"""CHUNKED-INCREMENT-AND-FREEZE: incremental exact IAF, chunk by chunk.

The batch engine materializes full-trace ``prev``/``next`` arrays, so a
month-long trace costs O(n) memory even though the curve itself only
needs O(u) state (one entry per distinct address).  This module is the
online form the paper's Section 7 machinery makes possible *without*
giving up exactness: consume the trace chunk-by-chunk and carry only the
**living requests** between chunks — the last access of every address
that is still distinct, ordered by recency, together with its global
position (the ``living_req`` representation of the etwest exemplar).

Per chunk ``C`` with carried living set ``L`` the engine solves the
synthetic trace ``R = L · C`` with the existing fused partition kernel
(via the reversal duality ``f(T) = reverse(d(reverse(T)))``) and keeps
only the chunk part of the forward distances.  This is exact, not an
approximation: every address in the global interval ``(prev(i), i)`` of
a chunk access ``i`` either re-occurs inside the chunk or is living at
the chunk boundary with a last access inside the interval, so distinct
counts over ``R`` equal distinct counts over the full trace — Lemma 7.1
with the truncation bound removed.  BOUNDED-IAF's ``Q̄`` suffix is the
``k``-truncated special case of this carry.

Consequences:

* ``ChunkedIAF.finalize()`` is **bit-identical** to
  :func:`repro.core.engine.iaf_hit_rate_curve` for *every* chunk size —
  the per-window forward-distance histograms partition the full trace's
  backward-distance histogram.
* Steady-state memory is O(u + chunk): the living carry, the pending
  buffer, and one chunk solve's engine state.  Nothing grows with n.
* With ``max_cache_size=k`` the carry is truncated to the ``k`` most
  recent living requests and windows come out ``truncated_at=k`` —
  exactly the BOUNDED-IAF chunk loop, which is how
  :class:`repro.core.streaming.OnlineCurveAnalyzer` now runs on top of
  this engine.

See docs/STREAMING.md for the architecture write-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .._typing import DEFAULT_DTYPE, TraceLike, as_trace, validate_dtype
from ..errors import CapacityError, ReproError
from ..metrics.memory import MemoryModel
from ..obs import NULL_SPAN, get_tracer
from .engine import EngineStats, Workspace, iaf_distances, \
    resolve_engine_backend
from .hitrate import HitRateCurve, curve_from_forward_distances, merge_curves
from .prevnext import last_access_carryover, prev_next_arrays

#: Default accesses per chunk for the exact (untruncated) mode.  Large
#: enough to amortize per-chunk overhead, small enough that the chunk
#: solve's working set stays modest next to the O(u) carry.
DEFAULT_CHUNK_SIZE = 1 << 15


def _restate_truncation(curve: HitRateCurve, k: int) -> HitRateCurve:
    """Restate ``curve`` with exactly ``k`` explicit sizes.

    Valid only when ``k`` does not exceed the curve's own truncation
    bound: the curve is then exact for every size up to ``k``, so short
    arrays extend with a flat tail and long ones are cut.
    """
    if curve.truncated_at is not None and curve.truncated_at < k:
        raise ReproError(
            f"cannot restate a curve truncated at "
            f"{curve.truncated_at} for k={k}: sizes beyond the "
            f"truncation are unknown"
        )
    if curve.truncated_at == k and curve.max_size == k:
        return curve
    return HitRateCurve(
        curve._padded(k)[:k], curve.total_accesses, truncated_at=k
    )


class ChunkedIAF:
    """Incremental IAF over a pushed stream, with living-request carry.

    ``max_cache_size=None`` (the default) is the exact mode: the carry
    holds *all* living requests and :meth:`finalize` reproduces the
    batch engine's full curve bit for bit.  ``max_cache_size=k``
    truncates the carry to the ``k`` most recent living requests and
    produces ``truncated_at=k`` windows — the BOUNDED-IAF regime.

    ``workspace`` is an optional fused-kernel
    :class:`~repro.core.engine.Workspace` shared across the per-chunk
    solves (one is created internally for the fused backend); like every
    workspace it must not be used by two solves concurrently.
    """

    def __init__(
        self,
        chunk_size: Optional[int] = None,
        *,
        max_cache_size: Optional[int] = None,
        dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
        engine_backend: Optional[str] = None,
        stats: Optional[EngineStats] = None,
        memory: Optional[MemoryModel] = None,
        workspace: Optional[Workspace] = None,
        span_name: str = "chunked.chunk",
    ) -> None:
        if max_cache_size is not None and max_cache_size < 1:
            raise CapacityError(
                f"max_cache_size must be >= 1, got {max_cache_size}"
            )
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        if chunk_size < 1:
            raise CapacityError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._chunk_size = int(chunk_size)
        self._k = None if max_cache_size is None else int(max_cache_size)
        self._dtype = validate_dtype(dtype)
        self._backend = resolve_engine_backend(engine_backend)
        self._stats = stats
        self._memory = memory
        self._span_name = span_name
        if workspace is None and self._backend != "naive":
            workspace = Workspace()
        self._workspace = workspace
        self._living_addrs = np.zeros(0, dtype=self._dtype)
        self._living_last = np.zeros(0, dtype=np.int64)
        self._pending: List[np.ndarray] = []
        self._pending_len = 0
        self._windows: List[HitRateCurve] = []
        self._accesses = 0
        self._processed = 0
        self._preview: Optional[HitRateCurve] = None

    # -- introspection ------------------------------------------------------

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def max_cache_size(self) -> Optional[int]:
        return self._k

    @property
    def accesses_ingested(self) -> int:
        """Total accesses pushed so far (including unprocessed buffer)."""
        return self._accesses

    @property
    def accesses_processed(self) -> int:
        """Accesses already committed into windows (excludes pending)."""
        return self._processed

    @property
    def living(self) -> np.ndarray:
        """Living addresses after the processed prefix, least-recent first."""
        return self._living_addrs.copy()

    @property
    def living_last_access(self) -> np.ndarray:
        """Global last-access position of each living address."""
        return self._living_last.copy()

    @property
    def living_size(self) -> int:
        return int(self._living_addrs.size)

    @property
    def windows(self) -> List[HitRateCurve]:
        """Curves of completed chunks, in stream order."""
        return list(self._windows)

    @property
    def state_nbytes(self) -> int:
        """Bytes of carried state: living map + pending buffer.

        This is the quantity that plateaus at O(u + chunk) — the soak
        benchmark charts it (plus process RSS) against the batch
        engine's O(n) footprint.
        """
        pending = sum(int(a.nbytes) for a in self._pending)
        return (
            int(self._living_addrs.nbytes)
            + int(self._living_last.nbytes)
            + pending
        )

    # -- ingestion ----------------------------------------------------------

    def push(self, accesses: TraceLike) -> int:
        """Ingest a batch of accesses; returns chunks completed by it.

        Input is validated exactly like the offline entry points (via
        :func:`repro._typing.as_trace`).
        """
        arr = np.atleast_1d(np.asarray(accesses))
        arr = as_trace(arr, dtype=self._dtype)
        if arr.size:
            self._preview = None
        self._accesses += int(arr.size)
        completed = 0
        while arr.size:
            room = self._chunk_size - self._pending_len
            take, arr = arr[:room], arr[room:]
            self._pending.append(take)
            self._pending_len += int(take.size)
            if self._pending_len == self._chunk_size:
                self._process_pending()
                completed += 1
        return completed

    def flush(self) -> bool:
        """Process a partial chunk now (window boundary); True if any."""
        if self._pending_len == 0:
            return False
        self._process_pending()
        return True

    def seed_carry(
        self,
        addrs: TraceLike,
        last_access: TraceLike,
        *,
        processed: int,
    ) -> None:
        """Adopt a living-request carry from another engine.

        This is the tier-switch handoff in :mod:`repro.tenants`: a
        successor engine (e.g. the sampled tier after a demotion) starts
        from the predecessor's living map so cross-boundary reuse
        distances stay exact over the successor's stream.  ``addrs``
        must be distinct, ``last_access`` strictly increasing (i.e.
        least-recent first, the engine's own carry order) with every
        position below ``processed``, the number of accesses the carry
        summarizes.  Only a pristine engine may be seeded — accepting a
        foreign carry after pushes would corrupt window accounting.
        """
        if self._accesses or self._windows or self._pending_len:
            raise ReproError(
                "seed_carry requires a pristine engine (nothing pushed)"
            )
        addr_arr = as_trace(np.atleast_1d(np.asarray(addrs)),
                            dtype=self._dtype)
        last_arr = np.atleast_1d(np.asarray(last_access)).astype(np.int64)
        if addr_arr.size != last_arr.size:
            raise ReproError(
                f"carry shape mismatch: {addr_arr.size} addresses vs "
                f"{last_arr.size} last-access positions"
            )
        if np.unique(addr_arr).size != addr_arr.size:
            raise ReproError("carry addresses must be distinct")
        if addr_arr.size:
            if (np.diff(last_arr) <= 0).any():
                raise ReproError(
                    "carry last_access must be strictly increasing "
                    "(least-recent first)"
                )
            if int(last_arr[0]) < 0 or int(last_arr[-1]) >= processed:
                raise ReproError(
                    "carry last_access positions must lie in "
                    f"[0, processed={processed})"
                )
        if processed < 0:
            raise ReproError(f"processed must be >= 0, got {processed}")
        if self._k is not None and addr_arr.size > self._k:
            # Bounded mode keeps only the k most recent living requests.
            addr_arr = addr_arr[-self._k:]
            last_arr = last_arr[-self._k:]
        self._living_addrs = addr_arr
        self._living_last = last_arr
        self._processed = int(processed)
        # The carry summarizes `processed` historical accesses; count them
        # as ingested so accesses_ingested >= accesses_processed holds.
        # They are NOT in any window — the predecessor's curve covers them.
        self._accesses = int(processed)

    def reconfigure(
        self,
        *,
        chunk_size: Optional[int] = None,
        max_cache_size: Optional[int] = None,
    ) -> None:
        """Adjust the chunk length and/or grow the truncation bound.

        The pending buffer and completed windows are untouched; a larger
        chunk simply means more room before the next boundary.  The
        truncation bound can only grow (shrinking would claim knowledge
        about sizes the carry already discarded) — past windows keep
        their old bound, the living carry just stops truncating as hard.
        """
        if chunk_size is not None:
            if chunk_size < 1:
                raise CapacityError(
                    f"chunk_size must be >= 1, got {chunk_size}"
                )
            self._chunk_size = int(chunk_size)
        if max_cache_size is not None:
            if self._k is None or max_cache_size < self._k:
                raise CapacityError("k can only grow, never shrink")
            self._k = int(max_cache_size)
        self._preview = None

    def _process_pending(self) -> None:
        chunk = (
            np.concatenate(self._pending)
            if len(self._pending) != 1
            else self._pending[0]
        )
        self._pending = []
        self._pending_len = 0
        self._preview = None
        tracer = get_tracer()
        span = (
            tracer.span(self._span_name, window=len(self._windows),
                        n=int(chunk.size), living=self.living_size,
                        k=0 if self._k is None else self._k)
            if tracer.enabled
            else NULL_SPAN
        )
        with span:
            if self._memory is not None:
                self._memory.observe(
                    "chunked.living",
                    int(self._living_addrs.nbytes)
                    + int(self._living_last.nbytes),
                )
            self._windows.append(self._solve_chunk(chunk, self._stats))
            self._living_addrs, self._living_last = last_access_carryover(
                self._living_addrs, self._living_last, chunk,
                self._processed, 0 if self._k is None else self._k,
            )
            self._processed += int(chunk.size)

    def _solve_chunk(
        self, chunk: np.ndarray, stats: Optional[EngineStats]
    ) -> HitRateCurve:
        """Solve ``living · chunk`` and keep the chunk's contributions.

        Side-effect free with ``stats=None`` — the preview path relies
        on that to answer mid-chunk queries without double-charging the
        engine instrumentation.
        """
        r_trace = np.concatenate([self._living_addrs, chunk]).astype(
            self._dtype, copy=False
        )
        if self._memory is not None:
            self._memory.observe("chunked.chunk", int(r_trace.nbytes) * 2)
        prev_r, _ = prev_next_arrays(r_trace, engine_backend=self._backend)
        # Reversal duality: the backward distances of the reversed trace,
        # reversed, are the forward distances of the original.
        d_rev = iaf_distances(r_trace[::-1], dtype=self._dtype, stats=stats,
                              engine_backend=self._backend,
                              workspace=self._workspace)
        f = d_rev[::-1]
        m = self._living_addrs.size
        prev_chunk = prev_r[m:]
        prev_map = np.where(prev_chunk == -1, -1, 0)
        if self._memory is not None:
            self._memory.observe("chunked.chunk", 0)
        if self._k is None:
            return curve_from_forward_distances(f[m:], prev_map)
        return curve_from_forward_distances(
            np.minimum(f[m:], self._k + 1), prev_map, truncated_at=self._k
        )

    # -- queries ------------------------------------------------------------

    def preview(self) -> Optional[HitRateCurve]:
        """Curve of the pending partial chunk, without committing it.

        Side-effect free and cached: repeated calls between pushes
        re-use the answer instead of re-solving the same accesses, and
        the solve records into neither ``stats`` nor a window.  Returns
        ``None`` when nothing is pending.
        """
        if self._pending_len == 0:
            return None
        if self._preview is None:
            chunk = np.concatenate(self._pending)
            self._preview = self._solve_chunk(chunk, None)
        return self._preview

    def curve(self, *, include_pending: bool = True) -> HitRateCurve:
        """The curve over everything ingested so far.

        With ``include_pending`` the partial chunk is analyzed on the
        fly (cached, never committed as a window), so the answer is
        always exact for the full prefix of the stream.
        """
        parts = list(self._windows)
        if include_pending:
            pending = self.preview()
            if pending is not None:
                parts.append(pending)
        if not parts:
            return HitRateCurve(
                np.zeros(0, dtype=np.int64), 0, truncated_at=self._k
            )
        if self._k is None:
            return merge_curves(parts)
        ks = [p.truncated_at for p in parts if p.truncated_at is not None]
        k = min(ks + [self._k])
        return merge_curves([_restate_truncation(p, k) for p in parts])

    def finalize(self) -> HitRateCurve:
        """Flush the pending chunk and return the merged curve.

        In the exact mode this is bit-identical to
        :func:`repro.core.engine.iaf_hit_rate_curve` over the
        concatenation of everything pushed, for every chunk size.
        """
        self.flush()
        return self.curve(include_pending=False)


@dataclass
class ChunkedResult:
    """Output of one :func:`chunked_iaf` run.

    ``.curve`` / ``.stats`` follow the unified result-shape convention
    (see :class:`repro.core.config.SolveResult`).
    """

    curve: HitRateCurve
    windows: List[HitRateCurve]
    chunk_bounds: List[Tuple[int, int]]
    chunk_size: int
    stats: Optional[EngineStats] = None


def chunked_iaf(
    trace: TraceLike,
    chunk_size: Optional[int] = None,
    *,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
    engine_backend: Optional[str] = None,
    workspace: Optional[Workspace] = None,
) -> ChunkedResult:
    """One-shot exact chunked solve (the ``algorithm="chunked-iaf"`` tier).

    Feeds ``trace`` through :class:`ChunkedIAF` in ``chunk_size`` runs;
    the returned curve is bit-identical to the batch engine's, but the
    working set never exceeds O(u + chunk_size).
    """
    arr = as_trace(trace, dtype=dtype)
    engine = ChunkedIAF(
        chunk_size, dtype=dtype, engine_backend=engine_backend,
        stats=stats, memory=memory, workspace=workspace,
    )
    size = engine.chunk_size
    # Feed in chunk-size runs so the full trace is never re-buffered.
    for start in range(0, arr.size, size):
        engine.push(arr[start : start + size])
    curve = engine.finalize().with_stats(stats)
    bounds = [
        (start, min(start + size, arr.size))
        for start in range(0, arr.size, size)
    ]
    return ChunkedResult(
        curve=curve, windows=engine.windows, chunk_bounds=bounds,
        chunk_size=size, stats=stats,
    )
