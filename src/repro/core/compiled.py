"""Optional compiled (numba) kernels for the engine level loop.

The fused backend (PR 3) is one numpy pass per level, but every op still
moves through a dozen full-array temporaries.  The paper's C++
implementation instead runs tight OpenMP loops over packed 8-byte Ops;
this module is the python-side equivalent: plain-python kernels written
in nopython-compatible style, jitted with :func:`numba.njit` when numba
is importable and runnable un-jitted otherwise.

Design rules (mirrored by ``tests/core/test_engine_compiled.py``):

* **Optional dependency.**  numba is detected once at import.  Without
  it the kernels stay plain python — far too slow for production, but
  bit-identical, which is what the differential tests need.  Set
  ``REPRO_COMPILED_PURE=1`` to declare the pure kernels "available" so
  the suite can exercise the compiled code path on numba-less hosts;
  otherwise ``engine_backend="compiled"`` degrades to ``"fused"`` with
  one warning (see :func:`repro.core.engine.resolve_engine_backend`).
* **Bit identity.**  Every kernel accumulates in int64 and stores with
  numpy's unsafe-cast (two's-complement truncating) semantics, exactly
  like the fused kernel's ``np.add(..., out=narrow)`` writes, so the
  certified-int32 mode wraps identically.  Head-effect overflow is
  *checked* (flag array, raised as ``CapacityError`` by the caller)
  just like ``_check_head_overflow``.
* **prange layout.**  The partition kernel parallelizes over segments
  — independent child partitions within one level, and independent
  traces in a batched solve (``batch_segments`` seeds one segment per
  trace).  Each segment owns the disjoint scratch slice
  ``[starts[s] + 2s, starts[s+1] + 2(s+1))`` (its ops plus two head
  slots), so parallel writes never overlap; a racy write to the shared
  error flag is benign (any offending value wins).
"""

from __future__ import annotations

import os

import numpy as np

try:  # pragma: no cover - exercised by the CI numba leg
    import numba
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - default path in the dev container
    numba = None
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):  # noqa: D103 - identity fallback
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: Environment knob: truthy values declare the un-jitted kernels
#: available so ``engine_backend="compiled"`` runs (slowly) without
#: numba.  Read dynamically so tests can monkeypatch it.
PURE_ENV = "REPRO_COMPILED_PURE"

#: Op kinds, numerically identical to ``repro.core.ops``.
PREFIX = 0
POSTFIX = 1


def pure_mode_forced() -> bool:
    """True when ``REPRO_COMPILED_PURE`` requests the un-jitted kernels."""
    return os.environ.get(PURE_ENV, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def is_available() -> bool:
    """True when ``engine_backend="compiled"`` can actually run."""
    return NUMBA_AVAILABLE or pure_mode_forced()


def jit_enabled() -> bool:
    """True when the kernels are actually jitted (numba importable)."""
    return NUMBA_AVAILABLE


def set_threads(n: int) -> None:
    """Bound the prange thread pool (no-op without numba)."""
    if NUMBA_AVAILABLE:
        numba.set_num_threads(max(1, int(n)))


def max_threads() -> int:
    """Threads prange may use (1 without numba)."""
    if NUMBA_AVAILABLE:
        return int(numba.get_num_threads())
    return 1


# ---------------------------------------------------------------------------
# Partition kernels: one serial pass per (segment, child), prange over
# segments.  Merge/effect rules are copied from _partition_level_fused
# (see that function for the derivation); the state machine below is the
# scalar form of its cluster-sum shrink:
#
#   head  — sum of merged effects before the first kept op, emitted as
#           one covering Prefix(mid|hi, ·) when nonzero
#   racc  — kept-op accumulator absorbing every merged effect that
#           follows it, flushed at the next kept op / segment end
# ---------------------------------------------------------------------------


@njit(cache=True)
def _wrap_narrow(v, check, r_min, r_max):
    """Two's-complement wrap of ``v`` into ``[r_min, r_max]``.

    Matches numpy's unsafe-cast store into the narrow ``r`` dtype (the
    fused kernel's behavior for uncertified narrow batches).  Explicit
    because a plain out-of-range store truncates under numba but raises
    ``OverflowError`` in the pure-python fallback.
    """
    if check and (v > r_max or v < r_min):
        span = r_max - r_min + 1
        v = (v - r_min) % span + r_min
    return v


@njit(cache=True, parallel=True)
def partition_segments(kind, t, r, starts, mid, hi,
                       sck, sct, scr, cnt_l, cnt_r,
                       err, check_r, r_min, r_max):
    """Unit-weight partition of every segment into its two children.

    Children land contiguously (left then right) in the scratch arrays
    at offset ``starts[s] + 2*s``; ``cnt_l``/``cnt_r`` receive the
    child op counts.  ``err`` is a 2-slot flag array: slot 0 set when a
    head effect minus one falls outside ``[r_min, r_max]`` (only
    checked when ``check_r``), slot 1 holds the offending value.
    """
    n_segs = mid.shape[0]
    for s in prange(n_segs):
        b = starts[s]
        e = starts[s + 1]
        base = b + 2 * s
        m_v = mid[s]
        h_v = hi[s]

        # --- left child [lo, mid] -------------------------------------
        pos = base
        head = np.int64(0)
        seen = False
        cur_k = np.uint8(0)
        cur_t = np.int64(0)
        cur_r = np.int64(0)
        for i in range(b, e):
            tv = np.int64(t[i])
            pf = kind[i] == PREFIX
            if tv > m_v or (pf and tv == m_v):
                ev = np.int64(r[i]) + (1 if pf else 0)
                if seen:
                    cur_r += ev
                else:
                    head += ev
            else:
                if seen:
                    sck[pos] = cur_k
                    sct[pos] = cur_t
                    scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
                    pos += 1
                else:
                    if head != 0:
                        hv = head - 1
                        if check_r and (hv > r_max or hv < r_min):
                            err[0] = 1
                            err[1] = hv
                        sck[pos] = PREFIX
                        sct[pos] = m_v
                        scr[pos] = _wrap_narrow(hv, check_r, r_min, r_max)
                        pos += 1
                    seen = True
                cur_k = kind[i]
                cur_t = tv
                cur_r = np.int64(r[i])
        if seen:
            sck[pos] = cur_k
            sct[pos] = cur_t
            scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
            pos += 1
        elif head != 0:
            hv = head - 1
            if check_r and (hv > r_max or hv < r_min):
                err[0] = 1
                err[1] = hv
            sck[pos] = PREFIX
            sct[pos] = m_v
            scr[pos] = _wrap_narrow(hv, check_r, r_min, r_max)
            pos += 1
        cnt_l[s] = pos - base

        # --- right child (mid, hi] ------------------------------------
        rbase = pos
        head = np.int64(0)
        seen = False
        for i in range(b, e):
            tv = np.int64(t[i])
            pf = kind[i] == PREFIX
            inside_l = tv <= m_v
            if inside_l or (pf and tv == h_v):
                ev = np.int64(r[i]) + (0 if (pf and inside_l) else 1)
                if seen:
                    cur_r += ev
                else:
                    head += ev
            else:
                if seen:
                    sck[pos] = cur_k
                    sct[pos] = cur_t
                    scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
                    pos += 1
                else:
                    if head != 0:
                        hv = head - 1
                        if check_r and (hv > r_max or hv < r_min):
                            err[0] = 1
                            err[1] = hv
                        sck[pos] = PREFIX
                        sct[pos] = h_v
                        scr[pos] = _wrap_narrow(hv, check_r, r_min, r_max)
                        pos += 1
                    seen = True
                cur_k = kind[i]
                cur_t = tv
                cur_r = np.int64(r[i])
        if seen:
            sck[pos] = cur_k
            sct[pos] = cur_t
            scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
            pos += 1
        elif head != 0:
            hv = head - 1
            if check_r and (hv > r_max or hv < r_min):
                err[0] = 1
                err[1] = hv
            sck[pos] = PREFIX
            sct[pos] = h_v
            scr[pos] = _wrap_narrow(hv, check_r, r_min, r_max)
            pos += 1
        cnt_r[s] = pos - rbase


@njit(cache=True, parallel=True)
def partition_segments_w(kind, t, r, w, starts, mid, hi,
                         sck, sct, scr, scw, cnt_l, cnt_r,
                         err, check_r, r_min, r_max):
    """Weighted partition; head ops carry ``r = head, w = 0``."""
    n_segs = mid.shape[0]
    for s in prange(n_segs):
        b = starts[s]
        e = starts[s + 1]
        base = b + 2 * s
        m_v = mid[s]
        h_v = hi[s]

        pos = base
        head = np.int64(0)
        seen = False
        cur_k = np.uint8(0)
        cur_t = np.int64(0)
        cur_r = np.int64(0)
        cur_w = np.int64(0)
        for i in range(b, e):
            tv = np.int64(t[i])
            pf = kind[i] == PREFIX
            if tv > m_v or (pf and tv == m_v):
                ev = np.int64(r[i]) + (np.int64(w[i]) if pf else np.int64(0))
                if seen:
                    cur_r += ev
                else:
                    head += ev
            else:
                if seen:
                    sck[pos] = cur_k
                    sct[pos] = cur_t
                    scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
                    scw[pos] = cur_w
                    pos += 1
                else:
                    if head != 0:
                        if check_r and (head > r_max or head < r_min):
                            err[0] = 1
                            err[1] = head
                        sck[pos] = PREFIX
                        sct[pos] = m_v
                        scr[pos] = _wrap_narrow(head, check_r, r_min, r_max)
                        scw[pos] = 0
                        pos += 1
                    seen = True
                cur_k = kind[i]
                cur_t = tv
                cur_r = np.int64(r[i])
                cur_w = np.int64(w[i])
        if seen:
            sck[pos] = cur_k
            sct[pos] = cur_t
            scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
            scw[pos] = cur_w
            pos += 1
        elif head != 0:
            if check_r and (head > r_max or head < r_min):
                err[0] = 1
                err[1] = head
            sck[pos] = PREFIX
            sct[pos] = m_v
            scr[pos] = _wrap_narrow(head, check_r, r_min, r_max)
            scw[pos] = 0
            pos += 1
        cnt_l[s] = pos - base

        rbase = pos
        head = np.int64(0)
        seen = False
        for i in range(b, e):
            tv = np.int64(t[i])
            pf = kind[i] == PREFIX
            inside_l = tv <= m_v
            if inside_l or (pf and tv == h_v):
                cov = np.int64(0) if (pf and inside_l) else np.int64(1)
                ev = np.int64(r[i]) + np.int64(w[i]) * cov
                if seen:
                    cur_r += ev
                else:
                    head += ev
            else:
                if seen:
                    sck[pos] = cur_k
                    sct[pos] = cur_t
                    scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
                    scw[pos] = cur_w
                    pos += 1
                else:
                    if head != 0:
                        if check_r and (head > r_max or head < r_min):
                            err[0] = 1
                            err[1] = head
                        sck[pos] = PREFIX
                        sct[pos] = h_v
                        scr[pos] = _wrap_narrow(head, check_r, r_min, r_max)
                        scw[pos] = 0
                        pos += 1
                    seen = True
                cur_k = kind[i]
                cur_t = tv
                cur_r = np.int64(r[i])
                cur_w = np.int64(w[i])
        if seen:
            sck[pos] = cur_k
            sct[pos] = cur_t
            scr[pos] = _wrap_narrow(cur_r, check_r, r_min, r_max)
            scw[pos] = cur_w
            pos += 1
        elif head != 0:
            if check_r and (head > r_max or head < r_min):
                err[0] = 1
                err[1] = head
            sck[pos] = PREFIX
            sct[pos] = h_v
            scr[pos] = _wrap_narrow(head, check_r, r_min, r_max)
            scw[pos] = 0
            pos += 1
        cnt_r[s] = pos - rbase


@njit(cache=True, parallel=True)
def compact_children(sck, sct, scr, starts, cnt_l, cnt_r,
                     out_starts, out_k, out_t, out_r):
    """Copy the slack scratch layout into the dense child arrays."""
    n_segs = cnt_l.shape[0]
    for s in prange(n_segs):
        base = starts[s] + 2 * s
        ol = out_starts[2 * s]
        cl = cnt_l[s]
        for j in range(cl):
            out_k[ol + j] = sck[base + j]
            out_t[ol + j] = sct[base + j]
            out_r[ol + j] = scr[base + j]
        orr = out_starts[2 * s + 1]
        rb = base + cl
        for j in range(cnt_r[s]):
            out_k[orr + j] = sck[rb + j]
            out_t[orr + j] = sct[rb + j]
            out_r[orr + j] = scr[rb + j]


@njit(cache=True, parallel=True)
def compact_children_w(sck, sct, scr, scw, starts, cnt_l, cnt_r,
                       out_starts, out_k, out_t, out_r, out_w):
    """Weighted variant of :func:`compact_children`."""
    n_segs = cnt_l.shape[0]
    for s in prange(n_segs):
        base = starts[s] + 2 * s
        ol = out_starts[2 * s]
        cl = cnt_l[s]
        for j in range(cl):
            out_k[ol + j] = sck[base + j]
            out_t[ol + j] = sct[base + j]
            out_r[ol + j] = scr[base + j]
            out_w[ol + j] = scw[base + j]
        orr = out_starts[2 * s + 1]
        rb = base + cl
        for j in range(cnt_r[s]):
            out_k[orr + j] = sck[rb + j]
            out_t[orr + j] = sct[rb + j]
            out_r[orr + j] = scr[rb + j]
            out_w[orr + j] = scw[rb + j]


# ---------------------------------------------------------------------------
# Leaf solver: a leaf segment's cell value is the summed effect of its
# ops up to and including the first Postfix (whose own r is excluded
# but whose weight counts) — the scalar form of _solve_leaves.
# ---------------------------------------------------------------------------


@njit(cache=True, parallel=True)
def solve_leaf_segments(kind, r, starts, lo, hi, out):
    """Write every nonempty leaf cell's value; return ops consumed."""
    n_segs = lo.shape[0]
    consumed = np.int64(0)
    for s in prange(n_segs):
        if lo[s] != hi[s]:
            continue
        b = starts[s]
        e = starts[s + 1]
        if e == b:
            continue
        acc = np.int64(0)
        for i in range(b, e):
            if kind[i] == POSTFIX:
                acc += 1
                break
            acc += 1 + np.int64(r[i])
        out[lo[s]] = acc
        consumed += e - b
    return consumed


@njit(cache=True, parallel=True)
def solve_leaf_segments_w(kind, r, w, starts, lo, hi, out):
    """Weighted variant: per-op effect is ``w + r``; Postfix adds w."""
    n_segs = lo.shape[0]
    consumed = np.int64(0)
    for s in prange(n_segs):
        if lo[s] != hi[s]:
            continue
        b = starts[s]
        e = starts[s + 1]
        if e == b:
            continue
        acc = np.int64(0)
        for i in range(b, e):
            if kind[i] == POSTFIX:
                acc += np.int64(w[i])
                break
            acc += np.int64(w[i]) + np.int64(r[i])
        out[lo[s]] = acc
        consumed += e - b
    return consumed


# ---------------------------------------------------------------------------
# prev/next scan: one serial pass over the trace through an
# open-addressing table (jitted) or a dict (pure fallback).  Both are
# exact, so the outputs are identical regardless of which one runs.
# ---------------------------------------------------------------------------

#: SplitMix64's odd multiplier (0x9E3779B97F4A7C15 as signed int64).
_HASH_MULT = -7046029254386353131


if NUMBA_AVAILABLE:  # pragma: no cover - exercised by the CI numba leg

    @njit(cache=True)
    def _fill_prev_next_table(arr, prev, nxt, keys, vals):
        mask = keys.shape[0] - 1
        for i in range(arr.shape[0]):
            a = arr[i]
            h = a * np.int64(_HASH_MULT)
            h ^= h >> 31
            slot = h & mask
            while True:
                v = vals[slot]
                if v == -1:
                    keys[slot] = a
                    vals[slot] = i
                    break
                if keys[slot] == a:
                    prev[i] = v
                    nxt[v] = i
                    vals[slot] = i
                    break
                slot = (slot + 1) & mask


def _fill_prev_next_pure(arr, prev, nxt):
    last = {}
    get = last.get
    for i, a in enumerate(arr.tolist()):
        j = get(a)
        if j is not None:
            prev[i] = j
            nxt[j] = i
        last[a] = i


def prev_next_fill(trace, prev, nxt):
    """Fill preallocated prev/next arrays (already seeded -1 / n)."""
    n = trace.shape[0]
    if n == 0:
        return
    arr = np.ascontiguousarray(trace, dtype=np.int64)
    if NUMBA_AVAILABLE:
        size = 1
        while size < 2 * n:
            size *= 2
        keys = np.empty(size, dtype=np.int64)
        vals = np.full(size, -1, dtype=np.int64)
        _fill_prev_next_table(arr, prev, nxt, keys, vals)
    else:
        _fill_prev_next_pure(arr, prev, nxt)


def warmup() -> None:
    """Force-compile every kernel on a tiny input (one-time JIT cost).

    Called by the benchmarks so compilation never lands inside a timed
    region; a no-op in pure mode.
    """
    kind = np.array([PREFIX, POSTFIX], dtype=np.uint8)
    t = np.array([1, 0], dtype=np.int64)
    r = np.zeros(2, dtype=np.int64)
    w = np.ones(2, dtype=np.int64)
    starts = np.array([0, 2], dtype=np.int64)
    mid = np.zeros(1, dtype=np.int64)
    hi = np.ones(1, dtype=np.int64)
    sc = np.zeros(4, dtype=np.int64)
    sck = np.zeros(4, dtype=np.uint8)
    cnt = np.zeros(1, dtype=np.int64)
    err = np.zeros(2, dtype=np.int64)
    out_starts = np.array([0, 1, 2], dtype=np.int64)
    out = np.zeros(4, dtype=np.int64)
    partition_segments(kind, t, r, starts, mid, hi, sck, sc.copy(),
                       sc.copy(), cnt.copy(), cnt.copy(), err, False, 0, 0)
    partition_segments_w(kind, t, r, w, starts, mid, hi, sck, sc.copy(),
                         sc.copy(), sc.copy(), cnt.copy(), cnt.copy(),
                         err, False, 0, 0)
    compact_children(sck, sc, sc, starts, cnt, cnt, out_starts,
                     sck.copy(), out.copy(), out.copy())
    compact_children_w(sck, sc, sc, sc, starts, cnt, cnt, out_starts,
                       sck.copy(), out.copy(), out.copy(), out.copy())
    solve_leaf_segments(kind, r, starts, mid, mid, out)
    solve_leaf_segments_w(kind, r, w, starts, mid, mid, out)
    prev_next_fill(t, out[:2], out[2:])
