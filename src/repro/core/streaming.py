"""Online hit-rate-curve analysis: feed accesses as they happen.

The deployment the paper argues is finally practical: a monitor attached
to a production cache that ingests the request stream and, at any
moment, can answer "what is the hit-rate curve so far / this window?" —
in O(k) memory and O(log k) amortized work per access.

:class:`OnlineCurveAnalyzer` is the k-truncated push façade over the
chunked incremental engine (:class:`repro.core.chunked.ChunkedIAF`):
accesses accumulate in the current chunk buffer; when the chunk fills,
it is solved against the carried living-request suffix (the ``Q̄`` of
Section 7 — the k-truncated special case of the engine's carry) and
folded into the global (and per-window) curves.  ``flush()`` processes a
partial chunk early (say, at a period boundary); results are identical
to an offline :func:`repro.core.bounded.bounded_iaf` run over the same
concatenated stream with the same chunk boundaries.

Mid-stream queries are cheap: ``curve(include_pending=True)`` analyzes
the pending partial chunk **on the fly** — side-effect free (no window
is committed, no stats are charged) and cached, so back-to-back calls
between pushes never re-solve the same accesses.  See
docs/STREAMING.md for the architecture.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from .._typing import DEFAULT_DTYPE, TraceLike, validate_dtype
from ..errors import CapacityError
from .chunked import ChunkedIAF, _restate_truncation
from .hitrate import HitRateCurve


class OnlineCurveAnalyzer:
    """Streaming LRU hit-rate curves, bounded at cache size ``k``.

    Parameters mirror :func:`repro.core.bounded.bounded_iaf`; unlike the
    offline form, ``max_cache_size`` is mandatory (an online monitor
    cannot know the final universe size up front — the paper notes ``k``
    can also be grown adaptively, which ``expand_k`` supports).
    """

    def __init__(
        self,
        max_cache_size: int,
        *,
        chunk_multiplier: int = 4,
        dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
        engine_backend: Optional[str] = None,
    ) -> None:
        if max_cache_size < 1:
            raise CapacityError(
                f"max_cache_size must be >= 1, got {max_cache_size}"
            )
        if chunk_multiplier < 1:
            raise CapacityError(
                f"chunk_multiplier must be >= 1, got {chunk_multiplier}"
            )
        self._k = int(max_cache_size)
        self._chunk_multiplier = int(chunk_multiplier)
        self._dtype = validate_dtype(dtype)
        self._engine = ChunkedIAF(
            self._chunk_multiplier * self._k,
            max_cache_size=self._k,
            dtype=self._dtype,
            engine_backend=engine_backend,
            span_name="streaming.chunk",
        )

    # -- ingestion ----------------------------------------------------------

    @property
    def max_cache_size(self) -> int:
        return self._k

    @property
    def chunk_multiplier(self) -> int:
        return self._chunk_multiplier

    @property
    def chunk_length(self) -> int:
        """Accesses per window: always ``chunk_multiplier * k``."""
        return self._engine.chunk_size

    @property
    def accesses_ingested(self) -> int:
        """Total accesses pushed so far (including unprocessed buffer)."""
        return self._engine.accesses_ingested

    def push(self, accesses: TraceLike) -> int:
        """Ingest a batch of accesses; returns windows completed by it.

        Input is validated exactly like the offline entry points (via
        :func:`repro._typing.as_trace`): floats, negative addresses, and
        values that do not fit in the analyzer's dtype raise
        :class:`~repro.errors.TraceError` instead of being silently cast.
        """
        return self._engine.push(accesses)

    def flush(self) -> bool:
        """Process a partial chunk now (window boundary); True if any."""
        return self._engine.flush()

    def expand_k(self, new_k: int) -> None:
        """Grow the tracked maximum cache size (Section 7 footnote: with
        ``k = u``, k grows as new addresses appear).

        Growing is sound mid-stream only up to the information already
        discarded: past windows stay truncated at their old ``k``, so the
        merged curve keeps the smallest truncation.  The carried living
        suffix is already the most-recent-k ordering and simply stops
        truncating as hard.

        The chunk length is recomputed as ``chunk_multiplier * new_k``,
        preserving the bounded-IAF amortization (each O(multiplier·k)
        chunk solve is charged to multiplier·k accesses — an earlier
        version clamped to ``max(chunk_len, k)``, silently discarding
        the multiplier).  The pending buffer is untouched: it simply has
        more room before the next window boundary.
        """
        if new_k < self._k:
            raise CapacityError("k can only grow, never shrink")
        self._k = int(new_k)
        self._engine.reconfigure(
            chunk_size=self._chunk_multiplier * self._k,
            max_cache_size=self._k,
        )

    # -- queries ------------------------------------------------------------

    @property
    def windows(self) -> List[HitRateCurve]:
        """Curves of completed windows, in stream order."""
        return self._engine.windows

    def curve(self, *, include_pending: bool = True) -> HitRateCurve:
        """The curve over everything ingested so far.

        With ``include_pending`` the partial chunk is analyzed on the fly
        (without committing a window), so the answer is always exact for
        the full prefix of the stream.  The on-the-fly solve is
        side-effect free and cached by the underlying engine: repeated
        calls between pushes reuse it instead of re-solving — an earlier
        version re-ran the engine (and re-charged its instrumentation)
        on every call.
        """
        return self._engine.curve(include_pending=include_pending)

    def window_curve(self, index: int) -> HitRateCurve:
        """Curve of one completed window."""
        return self._engine.windows[index]

    def _min_k(self) -> int:
        ks = [w.truncated_at for w in self._engine.windows
              if w.truncated_at is not None]
        return min(ks + [self._k])

    @staticmethod
    def _retruncate(curve: HitRateCurve, k: int) -> HitRateCurve:
        """Restate ``curve`` with exactly ``k`` explicit sizes.

        Window curves may store fewer than ``k`` entries (no access in
        the window had a larger reuse distance), so ``[:k]`` alone would
        label a short array ``truncated_at=k`` and let ``merge_curves``
        mix unequal-length mislabeled curves.  Because ``k`` never
        exceeds the window's own truncation bound (``_min_k`` guarantees
        it), the curve is exact for every size up to ``k`` — short
        arrays extend with a flat tail, long ones are cut.
        """
        return _restate_truncation(curve, k)


def analyze_stream(
    batches: Iterable[TraceLike],
    max_cache_size: int,
    *,
    chunk_multiplier: int = 4,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    engine_backend: Optional[str] = None,
) -> Tuple[HitRateCurve, List[HitRateCurve]]:
    """One-shot helper: run the analyzer over an iterable of batches.

    Composes directly with :func:`repro.workloads.traceio.stream_trace`::

        curve, windows = analyze_stream(stream_trace(path, 1 << 16), k)
    """
    analyzer = OnlineCurveAnalyzer(
        max_cache_size, chunk_multiplier=chunk_multiplier, dtype=dtype,
        engine_backend=engine_backend,
    )
    for batch in batches:
        analyzer.push(batch)
    analyzer.flush()
    return analyzer.curve(), analyzer.windows
