"""Online hit-rate-curve analysis: feed accesses as they happen.

The deployment the paper argues is finally practical: a monitor attached
to a production cache that ingests the request stream and, at any
moment, can answer "what is the hit-rate curve so far / this window?" —
in O(k) memory and O(log k) amortized work per access.

:class:`OnlineCurveAnalyzer` wraps BOUNDED-INCREMENT-AND-FREEZE's chunk
loop in push form: accesses accumulate in the current chunk buffer; when
the chunk fills, it is processed against the running ``Q̄`` suffix and
folded into the global (and per-window) curves.  ``flush()`` processes a
partial chunk early (say, at a period boundary); results are identical
to an offline :func:`repro.core.bounded.bounded_iaf` run over the same
concatenated stream with the same chunk boundaries.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from .._typing import DEFAULT_DTYPE, TraceLike, as_trace, validate_dtype
from ..errors import CapacityError, ReproError
from ..obs import NULL_SPAN, get_tracer
from .bounded import _process_chunk, recent_distinct_suffix
from .hitrate import HitRateCurve, merge_curves


class OnlineCurveAnalyzer:
    """Streaming LRU hit-rate curves, bounded at cache size ``k``.

    Parameters mirror :func:`repro.core.bounded.bounded_iaf`; unlike the
    offline form, ``max_cache_size`` is mandatory (an online monitor
    cannot know the final universe size up front — the paper notes ``k``
    can also be grown adaptively, which ``expand_k`` supports).
    """

    def __init__(
        self,
        max_cache_size: int,
        *,
        chunk_multiplier: int = 4,
        dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
        engine_backend: str = "fused",
    ) -> None:
        if max_cache_size < 1:
            raise CapacityError(
                f"max_cache_size must be >= 1, got {max_cache_size}"
            )
        if chunk_multiplier < 1:
            raise CapacityError(
                f"chunk_multiplier must be >= 1, got {chunk_multiplier}"
            )
        self._k = int(max_cache_size)
        self._backend = engine_backend
        self._chunk_multiplier = int(chunk_multiplier)
        self._chunk_len = self._chunk_multiplier * self._k
        self._dtype = validate_dtype(dtype)
        self._qbar = np.zeros(0, dtype=self._dtype)
        self._pending: List[np.ndarray] = []
        self._pending_len = 0
        self._windows: List[HitRateCurve] = []
        self._accesses = 0

    # -- ingestion ----------------------------------------------------------

    @property
    def max_cache_size(self) -> int:
        return self._k

    @property
    def chunk_multiplier(self) -> int:
        return self._chunk_multiplier

    @property
    def chunk_length(self) -> int:
        """Accesses per window: always ``chunk_multiplier * k``."""
        return self._chunk_len

    @property
    def accesses_ingested(self) -> int:
        """Total accesses pushed so far (including unprocessed buffer)."""
        return self._accesses

    def push(self, accesses: TraceLike) -> int:
        """Ingest a batch of accesses; returns windows completed by it.

        Input is validated exactly like the offline entry points (via
        :func:`repro._typing.as_trace`): floats, negative addresses, and
        values that do not fit in the analyzer's dtype raise
        :class:`~repro.errors.TraceError` instead of being silently cast.
        """
        arr = np.atleast_1d(np.asarray(accesses))
        arr = as_trace(arr, dtype=self._dtype)
        self._accesses += int(arr.size)
        completed = 0
        while arr.size:
            room = self._chunk_len - self._pending_len
            take, arr = arr[:room], arr[room:]
            self._pending.append(take)
            self._pending_len += int(take.size)
            if self._pending_len == self._chunk_len:
                self._process_pending()
                completed += 1
        return completed

    def flush(self) -> bool:
        """Process a partial chunk now (window boundary); True if any."""
        if self._pending_len == 0:
            return False
        self._process_pending()
        return True

    def expand_k(self, new_k: int) -> None:
        """Grow the tracked maximum cache size (Section 7 footnote: with
        ``k = u``, k grows as new addresses appear).

        Growing is sound mid-stream only up to the information already
        discarded: past windows stay truncated at their old ``k``, so the
        merged curve keeps the smallest truncation.  ``Q̄`` is already the
        most-recent-k suffix and simply stops truncating as hard.

        The chunk length is recomputed as ``chunk_multiplier * new_k``,
        preserving the bounded-IAF amortization (each O(multiplier·k)
        chunk solve is charged to multiplier·k accesses — an earlier
        version clamped to ``max(chunk_len, k)``, silently discarding
        the multiplier).  The pending buffer is untouched: it simply has
        more room before the next window boundary.
        """
        if new_k < self._k:
            raise CapacityError("k can only grow, never shrink")
        self._k = int(new_k)
        self._chunk_len = self._chunk_multiplier * self._k

    def _process_pending(self) -> None:
        chunk = (
            np.concatenate(self._pending)
            if len(self._pending) != 1
            else self._pending[0]
        )
        self._pending = []
        self._pending_len = 0
        tracer = get_tracer()
        span = (
            tracer.span("streaming.chunk", window=len(self._windows),
                        n=int(chunk.size), k=self._k)
            if tracer.enabled
            else NULL_SPAN
        )
        with span:
            window = _process_chunk(self._qbar, chunk, self._k,
                                    self._dtype,
                                    engine_backend=self._backend)
            self._windows.append(window)
            self._qbar = recent_distinct_suffix(self._qbar, chunk, self._k)

    # -- queries ------------------------------------------------------------

    @property
    def windows(self) -> List[HitRateCurve]:
        """Curves of completed windows, in stream order."""
        return list(self._windows)

    def curve(self, *, include_pending: bool = True) -> HitRateCurve:
        """The curve over everything ingested so far.

        With ``include_pending`` the partial chunk is analyzed on the fly
        (without committing a window), so the answer is always exact for
        the full prefix of the stream.
        """
        parts = list(self._windows)
        if include_pending and self._pending_len:
            chunk = np.concatenate(self._pending)
            parts.append(
                _process_chunk(self._qbar, chunk, self._k, self._dtype,
                               engine_backend=self._backend)
            )
        if not parts:
            return HitRateCurve(
                np.zeros(0, dtype=np.int64), 0, truncated_at=self._min_k()
            )
        merged = merge_curves(
            [self._retruncate(p, self._min_k()) for p in parts]
        )
        return merged

    def window_curve(self, index: int) -> HitRateCurve:
        """Curve of one completed window."""
        return self._windows[index]

    def _min_k(self) -> int:
        ks = [w.truncated_at for w in self._windows
              if w.truncated_at is not None]
        return min(ks + [self._k])

    @staticmethod
    def _retruncate(curve: HitRateCurve, k: int) -> HitRateCurve:
        """Restate ``curve`` with exactly ``k`` explicit sizes.

        Window curves may store fewer than ``k`` entries (no access in
        the window had a larger reuse distance), so ``[:k]`` alone would
        label a short array ``truncated_at=k`` and let ``merge_curves``
        mix unequal-length mislabeled curves.  Because ``k`` never
        exceeds the window's own truncation bound (``_min_k`` guarantees
        it), the curve is exact for every size up to ``k`` — short
        arrays extend with a flat tail, long ones are cut.
        """
        if curve.truncated_at is not None and curve.truncated_at < k:
            raise ReproError(
                f"cannot restate a curve truncated at "
                f"{curve.truncated_at} for k={k}: sizes beyond the "
                f"truncation are unknown"
            )
        if curve.truncated_at == k and curve.max_size == k:
            return curve
        return HitRateCurve(
            curve._padded(k)[:k], curve.total_accesses, truncated_at=k
        )


def analyze_stream(
    batches: Iterable[TraceLike],
    max_cache_size: int,
    *,
    chunk_multiplier: int = 4,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    engine_backend: str = "fused",
) -> Tuple[HitRateCurve, List[HitRateCurve]]:
    """One-shot helper: run the analyzer over an iterable of batches.

    Composes directly with :func:`repro.workloads.traceio.stream_trace`::

        curve, windows = analyze_stream(stream_trace(path, 1 << 16), k)
    """
    analyzer = OnlineCurveAnalyzer(
        max_cache_size, chunk_multiplier=chunk_multiplier, dtype=dtype,
        engine_backend=engine_backend,
    )
    for batch in batches:
        analyzer.push(batch)
    analyzer.flush()
    return analyzer.curve(), analyzer.windows
