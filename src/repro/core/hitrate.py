"""Post-processing phase: distance vectors → hit-rate curves (Section 3).

The LRU hit-rate curve is assembled from the distance vector by a
histogram plus prefix sum (equation (1) of the paper):

    hits(k) = #{ i : prev(i) != -1 and d_prev(i) <= k }
            = #{ i : next(i) < n   and d_i       <= k }

:class:`HitRateCurve` is the value type the whole public API returns.  It
stores *cumulative hit counts* per cache size, supports truncation
(Section 7), merging of per-window curves (windowed Bound-IAF output),
and conversion to hit-rate / miss-ratio arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class HitRateCurve:
    """The LRU hit-rate curve ``H_T`` of one trace (or trace window).

    ``hits_cumulative[k-1]`` is the number of accesses that hit an LRU
    cache of size ``k``.  Beyond ``len(hits_cumulative)`` the curve is
    flat (every larger cache hits the same accesses), so lookups clamp.

    ``truncated_at`` is set when the curve was computed by a k-bounded
    algorithm: sizes above it are unknown rather than flat.

    ``stats`` optionally links the curve back to the instrumentation of
    the solve that produced it (an ``EngineStats`` or ``IOStats``).  It
    is provenance, not data: it never participates in equality or
    merging, and post-processing steps (truncation) must carry it over.
    """

    hits_cumulative: np.ndarray
    total_accesses: int
    truncated_at: Optional[int] = None
    stats: Optional[Any] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.hits_cumulative, dtype=np.int64)
        object.__setattr__(self, "hits_cumulative", arr)
        if arr.ndim != 1:
            raise ReproError("hits_cumulative must be 1-D")
        if self.total_accesses < 0:
            raise ReproError("total_accesses must be >= 0")
        if arr.size:
            if arr[0] < 0 or (np.diff(arr) < 0).any():
                raise ReproError("hits_cumulative must be non-decreasing")
            if int(arr[-1]) > self.total_accesses:
                raise ReproError("hit count exceeds total accesses")
        if self.truncated_at is not None and arr.size > self.truncated_at:
            raise ReproError(
                f"curve has {arr.size} sizes but claims truncation at "
                f"{self.truncated_at}"
            )

    @property
    def max_size(self) -> int:
        """Largest cache size with an explicitly stored value."""
        return int(self.hits_cumulative.size)

    def hits(self, k: int) -> int:
        """Hit count of a size-``k`` LRU cache."""
        if k < 0:
            raise ReproError(f"cache size must be >= 0, got {k}")
        if k == 0 or self.hits_cumulative.size == 0:
            return 0
        if self.truncated_at is not None and k > self.truncated_at:
            raise ReproError(
                f"curve truncated at {self.truncated_at}; size {k} unknown"
            )
        return int(self.hits_cumulative[min(k, self.max_size) - 1])

    def hit_rate(self, k: int) -> float:
        """``H_T(k)``: fraction of accesses hitting a size-``k`` cache."""
        if self.total_accesses == 0:
            return 0.0
        return self.hits(k) / self.total_accesses

    def hit_rate_array(self) -> np.ndarray:
        """``H_T(k)`` for k = 1..max_size as a float array."""
        if self.total_accesses == 0:
            return np.zeros(self.max_size, dtype=np.float64)
        return self.hits_cumulative / float(self.total_accesses)

    def miss_ratio_array(self) -> np.ndarray:
        """The complementary miss-ratio curve, ``1 - H_T(k)``."""
        return 1.0 - self.hit_rate_array()

    def merge(self, other: "HitRateCurve") -> "HitRateCurve":
        """Combine two disjoint windows' curves into one.

        Valid because each access belongs to exactly one window and its
        hit-at-size-k status is a global property of the trace (Section 7
        computes per-chunk curves and "sums the curves together").
        """
        if (self.truncated_at is None) != (other.truncated_at is None) or (
            self.truncated_at is not None
            and self.truncated_at != other.truncated_at
        ):
            raise ReproError(
                f"cannot merge curves with different truncation: "
                f"{self.truncated_at} vs {other.truncated_at}"
            )
        size = max(self.max_size, other.max_size)
        merged = self._padded(size) + other._padded(size)
        return HitRateCurve(
            hits_cumulative=merged,
            total_accesses=self.total_accesses + other.total_accesses,
            truncated_at=self.truncated_at,
        )

    def _padded(self, size: int) -> np.ndarray:
        """Extend the cumulative array to ``size`` entries (flat tail)."""
        cur = self.hits_cumulative
        if cur.size >= size:
            return cur.astype(np.int64, copy=True)
        tail_value = int(cur[-1]) if cur.size else 0
        out = np.full(size, tail_value, dtype=np.int64)
        out[: cur.size] = cur
        return out

    def with_stats(self, stats: Optional[Any]) -> "HitRateCurve":
        """The same curve with ``stats`` attached (data arrays shared)."""
        return HitRateCurve(
            hits_cumulative=self.hits_cumulative,
            total_accesses=self.total_accesses,
            truncated_at=self.truncated_at,
            stats=stats,
        )

    def almost_equal(self, other: "HitRateCurve") -> bool:
        """Exact equality of hit counts over the common explicit range."""
        if self.total_accesses != other.total_accesses:
            return False
        size = max(self.max_size, other.max_size)
        return bool(np.array_equal(self._padded(size), other._padded(size)))


def save_curve(curve: HitRateCurve, path) -> None:
    """Persist a curve to an ``.npz`` file (exact, compact).

    Operators keep per-period curves around for trend analysis; the
    cumulative-counts representation round-trips losslessly.
    """
    np.savez_compressed(
        path,
        hits_cumulative=curve.hits_cumulative,
        total_accesses=np.int64(curve.total_accesses),
        truncated_at=np.int64(
            -1 if curve.truncated_at is None else curve.truncated_at
        ),
    )


def load_curve(path) -> HitRateCurve:
    """Load a curve written by :func:`save_curve`."""
    with np.load(path) as data:
        try:
            truncated = int(data["truncated_at"])
            return HitRateCurve(
                hits_cumulative=data["hits_cumulative"],
                total_accesses=int(data["total_accesses"]),
                truncated_at=None if truncated < 0 else truncated,
            )
        except KeyError as exc:
            raise ReproError(f"not a saved hit-rate curve: missing {exc}")


def merge_curves(curves: Sequence[HitRateCurve]) -> HitRateCurve:
    """Fold :meth:`HitRateCurve.merge` over a window sequence."""
    if not curves:
        return HitRateCurve(np.zeros(0, dtype=np.int64), 0)
    out = curves[0]
    for c in curves[1:]:
        out = out.merge(c)
    return out


def curve_from_backward_distances(
    distances: np.ndarray, next_arr: np.ndarray
) -> HitRateCurve:
    """Build the curve from the (backward) distance vector ``d`` (Section 3).

    ``d_i`` determines a hit for the *re-access* at ``next(i)``, so only
    positions with ``next(i) < n`` contribute; the hit lands at every cache
    size >= ``d_i``.
    """
    d = np.asarray(distances, dtype=np.int64)
    nxt = np.asarray(next_arr)
    n = d.size
    if nxt.size != n:
        raise ReproError("distances and next arrays must have equal length")
    contributing = d[nxt < n]
    return _curve_from_hit_distances(contributing, n)


def curve_from_forward_distances(
    forward: np.ndarray,
    prev_arr: np.ndarray,
    *,
    truncated_at: Optional[int] = None,
) -> HitRateCurve:
    """Build the curve from the forward distance vector ``f`` (Section 7).

    ``f_i`` is the stack distance of access ``i`` itself; positions with
    ``prev(i) == -1`` are compulsory misses.  When ``truncated_at=k`` is
    given, values ``> k`` are treated as misses-at-every-size (they may be
    the sentinel ``k+1``), and the curve is marked truncated.
    """
    f = np.asarray(forward, dtype=np.int64)
    prev = np.asarray(prev_arr)
    n = f.size
    if prev.size != n:
        raise ReproError("forward and prev arrays must have equal length")
    contributing = f[prev != -1]
    if truncated_at is not None:
        contributing = contributing[contributing <= truncated_at]
    curve = _curve_from_hit_distances(contributing, n)
    if truncated_at is None:
        return curve
    return HitRateCurve(
        curve.hits_cumulative, curve.total_accesses, truncated_at=truncated_at
    )


def _curve_from_hit_distances(distances: np.ndarray, total: int) -> HitRateCurve:
    """Histogram + prefix sum over the distances of hit-capable accesses.

    The stored curve ends at the largest distance present; all larger
    sizes are flat, which :class:`HitRateCurve` lookups handle by clamping
    (valid even for truncated curves: no access has a distance between the
    stored maximum and the truncation bound, by construction).
    """
    if distances.size and int(distances.min()) < 1:
        raise ReproError("stack distances of re-accessed items must be >= 1")
    size = int(distances.max()) if distances.size else 0
    hist = np.bincount(distances, minlength=size + 1) if distances.size else \
        np.zeros(size + 1, dtype=np.int64)
    return HitRateCurve(
        hits_cumulative=np.cumsum(hist[1 : size + 1]),
        total_accesses=total,
    )


def forward_from_backward(
    distances: np.ndarray, prev_arr: np.ndarray
) -> np.ndarray:
    """Convert backward ``d`` to forward ``f``: ``f_i = d_prev(i)``.

    Positions with no previous occurrence get the sentinel 0 (no finite
    forward distance; the paper leaves these to the "prev != 0" guard).
    """
    d = np.asarray(distances, dtype=np.int64)
    prev = np.asarray(prev_arr)
    out = np.zeros(d.size, dtype=np.int64)
    has_prev = prev != -1
    out[has_prev] = d[prev[has_prev]]
    return out
