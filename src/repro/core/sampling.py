"""Spatial (SHARDS-style) address sampling — one implementation, shared.

Hash-sampled miss-ratio-curve estimation (SHARDS, Waldspurger et al.,
FAST '15) keeps an address iff a uniform hash of it falls below a
threshold, computes **exact** stack distances on the sampled sub-trace,
scales each distance by ``1/rate`` (a reuse window's composition is
preserved in expectation, so a window holding ``s`` sampled distinct
addresses had ``≈ s/rate`` real ones), and corrects for the realized
sample size.  The estimator is cheap and usually accurate — and carries
no guarantee; ``repro.qa.accuracy`` measures the error per workload and
the adversarial cases where it is unbounded.

This module is the **single home of the sampling math**.  Two callers
build on it:

* :func:`repro.baselines.shards.shards_hit_rate_curve` — the one-shot
  offline baseline (kept as a thin delegate for compatibility);
* the sampled tenant tier in :mod:`repro.tenants` — the same math on a
  *streamed* sub-trace, with the exact work done by the chunked
  incremental engine instead of a batch solve.

Both paths funnel through :func:`estimate_from_histogram`, so their
estimates are bit-identical given the same sample — the property the
``sampled-iaf`` oracle row enforces.

A note on the threshold: an address is sampled iff
``splitmix64(addr ^ mix(seed)) < sample_threshold(rate)``, where the
threshold is computed with **exact integer arithmetic**
(``floor(rate · 2^64)`` via :class:`fractions.Fraction`).  The previous
in-baseline formula rounded through ``float(2^64 - 1)`` and used an
inclusive compare, admitting slightly more hash values than ``rate``
prescribes — an off-by-a-few bias pinned as a regression in
``tests/qa/test_regressions.py`` when this module was extracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

import numpy as np

from ..errors import ReproError

#: SplitMix64 constants for the sampling hash.
SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
MASK = (1 << 64) - 1


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mixer, vectorized (SplitMix64 finalizer)."""
    z = (values.astype(np.uint64) + np.uint64(SPLITMIX_GAMMA)) & np.uint64(MASK)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & np.uint64(MASK)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & np.uint64(MASK)
    return z ^ (z >> np.uint64(31))


def unmix64(hashed: int) -> int:
    """Invert :func:`splitmix64` for one value (the finalizer is a bijection).

    Used by the regression tests to *construct* addresses whose hash
    lands on an exact threshold boundary — the only way to make a
    one-in-2^64 sampling decision deterministic and testable.
    """
    inv1 = pow(0x94D049BB133111EB, -1, 1 << 64)
    inv2 = pow(0xBF58476D1CE4E5B9, -1, 1 << 64)
    z = hashed & MASK
    z ^= (z >> 31) ^ (z >> 62)
    z = (z * inv1) & MASK
    z ^= (z >> 27) ^ (z >> 54)
    z = (z * inv2) & MASK
    z ^= (z >> 30) ^ (z >> 60)
    return (z - SPLITMIX_GAMMA) & MASK


def _validate_rate(rate: float) -> float:
    if not 0.0 < rate <= 1.0:
        raise ReproError(f"sample_rate must be in (0, 1], got {rate}")
    return float(rate)


def sample_threshold(rate: float) -> int:
    """Number of admitted hash values in ``[0, 2^64)`` — exact.

    An address is sampled iff its hash is **strictly below** this
    threshold, so the inclusion probability is exactly
    ``floor(rate · 2^64) / 2^64`` (``rate`` read as the binary rational
    it is).  ``rate=1.0`` yields ``2^64``: everything is sampled.
    """
    return int(Fraction(_validate_rate(rate)) * (1 << 64))


def sample_hash(addrs: np.ndarray, seed: int = 0) -> np.ndarray:
    """Per-address sampling hash (uint64), perturbed by ``seed``.

    Distinct monitors (seeds) disagree on which addresses they track —
    that independence is what gives sampled estimates error bars.
    """
    arr = np.asarray(addrs)
    return splitmix64(arr.astype(np.int64).view(np.uint64)
                      ^ np.uint64((seed * 2 + 1) & MASK))


def sample_mask(addrs: np.ndarray, rate: float, seed: int = 0) -> np.ndarray:
    """Boolean mask of the accesses whose address is sampled at ``rate``."""
    arr = np.asarray(addrs)
    threshold = sample_threshold(rate)
    if threshold >= 1 << 64:
        return np.ones(arr.shape, dtype=bool)
    return sample_hash(arr, seed) < np.uint64(threshold)


@dataclass(frozen=True)
class ApproximateCurve:
    """A sampled estimate of the hit-rate curve.

    ``hits_estimate`` is cumulative *estimated* hit counts per size
    (floats: samples carry weight ``1/rate``); ``sampled_accesses`` and
    ``sample_rate`` record how much evidence backs the estimate.
    """

    hits_estimate: np.ndarray
    total_accesses: int
    sampled_accesses: int
    sample_rate: float

    @property
    def max_size(self) -> int:
        return int(self.hits_estimate.size)

    def hit_rate(self, k: int) -> float:
        if k < 1 or self.total_accesses == 0 or self.max_size == 0:
            return 0.0
        return float(
            self.hits_estimate[min(k, self.max_size) - 1]
        ) / self.total_accesses

    def hit_rate_array(self) -> np.ndarray:
        if self.total_accesses == 0:
            return np.zeros(self.max_size)
        return self.hits_estimate / self.total_accesses


def scale_distances(finite: np.ndarray, rate: float) -> np.ndarray:
    """Rescale sampled stack distances to full-trace scale (``d/rate``).

    Rounded to the nearest integer and clamped to at least 1 (a sampled
    re-access is a hit at *some* size).
    """
    scaled = np.rint(np.asarray(finite, dtype=np.float64) / rate)
    return np.maximum(scaled.astype(np.int64), 1)


def estimate_from_histogram(
    hist: np.ndarray,
    *,
    total_accesses: int,
    sampled_accesses: int,
    rate: float,
) -> ApproximateCurve:
    """Fold a scaled-distance histogram into an :class:`ApproximateCurve`.

    ``hist[s]`` counts sampled re-accesses whose *rescaled* distance is
    ``s``; each stands for ``1/rate`` real re-accesses.  The fixed-rate
    count correction is SHARDS_adj (Waldspurger et al., FAST '15 §5.2):
    the deviation of the realized sample size from its expectation,
    ``total·rate − sampled``, is credited to the smallest-distance
    bucket before scaling.  Rationale: under a skewed popularity
    distribution that deviation is dominated by the hottest addresses
    — whose reuse distances are tiny — so the missing (or excess) mass
    belongs at the head of the histogram.  The previous multiplicative
    correction (rescale by expected/realized) cancels entirely in
    ``hit_rate`` and left a systematic bias that grows with skew; the
    change is pinned in ``tests/qa/test_regressions.py``.  At rate 1.0
    the adjustment is identically zero, so exactness is untouched.

    Every estimate in the package is produced here, so the offline
    baseline and the streaming tier agree bit for bit on equal samples.
    """
    rate = _validate_rate(rate)
    hist = np.asarray(hist, dtype=np.int64)
    if sampled_accesses == 0 or hist.size <= 1 or not hist[1:].any():
        return ApproximateCurve(
            np.zeros(0), total_accesses, int(sampled_accesses), rate
        )
    adjust = total_accesses * rate - sampled_accesses
    hits = np.maximum(np.cumsum(hist[1:]) + adjust, 0.0) / rate
    return ApproximateCurve(
        hits_estimate=hits,
        total_accesses=total_accesses,
        sampled_accesses=int(sampled_accesses),
        sample_rate=rate,
    )


def estimate_from_distances(
    finite: np.ndarray,
    *,
    total_accesses: int,
    sampled_accesses: int,
    rate: float,
    max_cache_size: Optional[int] = None,
) -> ApproximateCurve:
    """Estimate from the raw finite forward distances of the sample."""
    scaled = scale_distances(finite, rate)
    if max_cache_size is not None:
        scaled = scaled[scaled <= max_cache_size]
    hist = (np.bincount(scaled) if scaled.size
            else np.zeros(1, dtype=np.int64))
    return estimate_from_histogram(
        hist, total_accesses=total_accesses,
        sampled_accesses=sampled_accesses, rate=rate,
    )


def distance_histogram(curve) -> np.ndarray:
    """Per-distance hit counts of an exact curve (inverse of the cumsum).

    ``out[d]`` is the number of accesses whose stack distance is exactly
    ``d`` (``out[0]`` unused) — the representation the rescaling needs,
    recovered losslessly from ``hits_cumulative``.
    """
    hits = np.asarray(curve.hits_cumulative, dtype=np.int64)
    out = np.zeros(hits.size + 1, dtype=np.int64)
    if hits.size:
        out[1:] = np.diff(hits, prepend=0)
    return out


def rescale_curve(
    curve,
    *,
    total_accesses: int,
    sampled_accesses: int,
    rate: float,
    max_cache_size: Optional[int] = None,
) -> ApproximateCurve:
    """SHARDS-rescale an **exact** curve computed on a sampled sub-trace.

    This is the streaming tier's query path: the chunked engine keeps an
    exact curve over the sampled accesses; rescaling its distance
    histogram is equivalent to rescaling per-access distances (the
    histogram partitions them), so the result is bit-identical to
    :func:`estimate_from_distances` on the same sample.
    """
    rate = _validate_rate(rate)
    hist = distance_histogram(curve)
    if not hist[1:].any():
        return estimate_from_histogram(
            np.zeros(1, dtype=np.int64), total_accesses=total_accesses,
            sampled_accesses=sampled_accesses, rate=rate,
        )
    sizes = np.arange(hist.size, dtype=np.int64)
    scaled_sizes = scale_distances(sizes[1:], rate)
    counts = hist[1:]
    if max_cache_size is not None:
        keep = scaled_sizes <= max_cache_size
        scaled_sizes, counts = scaled_sizes[keep], counts[keep]
    if counts.size == 0 or not counts.any():
        scaled_hist = np.zeros(1, dtype=np.int64)
    else:
        scaled_hist = np.bincount(
            scaled_sizes, weights=counts.astype(np.float64)
        ).astype(np.int64)
    return estimate_from_histogram(
        scaled_hist, total_accesses=total_accesses,
        sampled_accesses=sampled_accesses, rate=rate,
    )


def sampled_hit_rate_curve(
    trace,
    rate: float,
    *,
    seed: int = 0,
    max_cache_size: Optional[int] = None,
) -> ApproximateCurve:
    """One-shot fixed-rate SHARDS estimate (the offline baseline's core).

    ``rate=1.0`` degenerates to the exact computation: every access is
    sampled, distances scale by 1, and the correction is unity.
    """
    from .._typing import as_trace
    from .engine import iaf_distances
    from .hitrate import forward_from_backward
    from .prevnext import prev_next_arrays

    rate = _validate_rate(rate)
    arr = as_trace(trace)
    n = arr.size
    if n == 0:
        return ApproximateCurve(np.zeros(0), 0, 0, rate)
    sample = arr[sample_mask(arr, rate, seed)]
    if sample.size == 0:
        return ApproximateCurve(np.zeros(0), n, 0, rate)
    d = iaf_distances(sample)
    prev, _ = prev_next_arrays(sample)
    f = forward_from_backward(d, prev)
    return estimate_from_distances(
        f[prev != -1], total_accesses=n, sampled_accesses=int(sample.size),
        rate=rate, max_cache_size=max_cache_size,
    )


def estimate_error(
    approx: ApproximateCurve, exact_hit_rates: np.ndarray
) -> float:
    """Mean absolute error of the estimate over ``1..len(exact)`` sizes."""
    sizes = np.arange(1, np.asarray(exact_hit_rates).size + 1)
    est = np.array([approx.hit_rate(int(k)) for k in sizes])
    return float(np.mean(np.abs(est - exact_hit_rates)))


__all__ = [
    "ApproximateCurve",
    "MASK",
    "SPLITMIX_GAMMA",
    "distance_histogram",
    "estimate_error",
    "estimate_from_distances",
    "estimate_from_histogram",
    "rescale_curve",
    "sample_hash",
    "sample_mask",
    "sample_threshold",
    "sampled_hit_rate_curve",
    "scale_distances",
    "splitmix64",
    "unmix64",
]
