"""The partition routine on Prefix/Postfix sequences (Sections 6 and 8).

``partition_prepost`` takes the shrunk projection of the operation
sequence on an interval and produces the shrunk projections on its two
halves.  Two implementations are provided:

* :func:`partition_prepost` — the engineered serial routine of Section 8:
  a single right-to-left pass that merges full-interval operations into
  their predecessors on the fly and **stops early**: once it meets a
  ``Prefix(t, r)`` with ``t`` inside the left half, every earlier
  operation belongs verbatim to the left child, and the operations before
  that Prefix have zero net effect on the right child (the Prefix's own
  trailing ``r`` still lands there, folded into the pending accumulator).
* :func:`partition_prepost_simple` — a two-pass left-to-right version with
  no early exit, used to cross-check the optimized one.

``solve_prepost_recursive`` runs the full divide-and-conquer on top of the
partition — an independent mid-scale oracle for the vectorized engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._typing import TraceLike, as_trace
from ..errors import OperationError
from .ops import (
    PostfixOp,
    PrefixOp,
    PrePostOp,
    is_full_interval,
    prepost_sequence,
    project_prepost,
)


def _append_merged(
    out: List[PrePostOp], op: PrePostOp, child_hi: int
) -> None:
    """Append ``op`` to ``out``, merging it if it is full-interval.

    A full-interval op (``Prefix(child_hi, r)``, uniform effect ``1+r``)
    merges into the last op of ``out`` by adding its effect to that op's
    trailing ``r`` — regardless of the predecessor's type (Section 8).
    With an empty ``out`` it must stay, unless its effect is zero.
    """
    if is_full_interval(op, child_hi):
        effect = 1 + op.r
        if out:
            last = out[-1]
            if isinstance(last, PrefixOp):
                out[-1] = PrefixOp(last.t, last.r + effect)
            else:
                out[-1] = PostfixOp(last.t, last.r + effect)
        elif effect != 0:
            out.append(PrefixOp(child_hi, effect - 1))
        return
    out.append(op)


def partition_prepost_simple(
    ops: List[PrePostOp], lo: int, hi: int
) -> Tuple[List[PrePostOp], List[PrePostOp]]:
    """Left-to-right partition with no early exit (the checking version)."""
    if lo >= hi:
        raise OperationError(f"cannot partition interval [{lo}, {hi}]")
    mid = (lo + hi) // 2
    left: List[PrePostOp] = []
    right: List[PrePostOp] = []
    for op in ops:
        _append_merged(left, project_prepost(op, lo, mid), mid)
        _append_merged(right, project_prepost(op, mid + 1, hi), hi)
    return left, right


def partition_prepost(
    ops: List[PrePostOp], lo: int, hi: int
) -> Tuple[List[PrePostOp], List[PrePostOp]]:
    """Right-to-left partition with the Section-8 early exit.

    Builds both children back to front.  ``pending_left``/``pending_right``
    accumulate the uniform effect of full-interval projections awaiting a
    non-full predecessor to merge into; leftover pending at the front
    becomes a head op (dropped if its net effect is zero — on the right
    child this is exactly how the pre-exit operations vanish).
    """
    if lo >= hi:
        raise OperationError(f"cannot partition interval [{lo}, {hi}]")
    mid = (lo + hi) // 2
    left_rev: List[PrePostOp] = []
    right_rev: List[PrePostOp] = []
    pending_left = 0
    pending_right = 0
    stop_at: Optional[int] = None

    def _absorb_rev(
        out_rev: List[PrePostOp], op: PrePostOp, child_hi: int, pending: int
    ) -> int:
        """Right-to-left counterpart of :func:`_append_merged`."""
        if is_full_interval(op, child_hi):
            return pending + 1 + op.r
        if isinstance(op, PrefixOp):
            out_rev.append(PrefixOp(op.t, op.r + pending))
        else:
            out_rev.append(PostfixOp(op.t, op.r + pending))
        return 0

    for idx in range(len(ops) - 1, -1, -1):
        op = ops[idx]
        if isinstance(op, PrefixOp) and op.t <= mid:
            # Early exit: ops[0..idx] go verbatim to the left child (this
            # Prefix absorbs any pending left merge); on the right child
            # only this op's trailing r survives of ops[0..idx].
            stop_at = idx
            left_rev.append(PrefixOp(op.t, op.r + pending_left))
            pending_left = 0
            pending_right += op.r
            break
        pending_left = _absorb_rev(
            left_rev, project_prepost(op, lo, mid), mid, pending_left
        )
        pending_right = _absorb_rev(
            right_rev, project_prepost(op, mid + 1, hi), hi, pending_right
        )

    if pending_left != 0:
        left_rev.append(PrefixOp(mid, pending_left - 1))
    if pending_right != 0:
        right_rev.append(PrefixOp(hi, pending_right - 1))

    left = ops[:stop_at] + left_rev[::-1] if stop_at is not None \
        else left_rev[::-1]
    return left, right_rev[::-1]


def _solve_leaf(ops: List[PrePostOp], cell: int) -> int:
    """Single-cell base case: sum effects until the first Postfix freezes.

    At a leaf every op has ``t == cell``; a Prefix contributes ``1 + r``,
    the first Postfix contributes its leading ``+1`` and freezes the cell
    (its trailing ``r`` and every later op are skipped).
    """
    value = 0
    for op in ops:
        if op.t != cell:
            raise OperationError(
                f"leaf op {op!r} does not target cell {cell}"
            )
        if isinstance(op, PostfixOp):
            return value + 1
        value += 1 + op.r
    return value


def solve_prepost(ops: List[PrePostOp], lo: int, hi: int) -> np.ndarray:
    """Divide-and-conquer evaluation of a Prefix/Postfix sequence.

    Returns the values of cells ``lo..hi``.  Uses the optimized partition;
    tests cross-check against :func:`partition_prepost_simple` and the
    direct executors in :mod:`repro.core.ops`.
    """
    out = np.zeros(hi - lo + 1, dtype=np.int64)
    _solve_rec(ops, lo, hi, lo, out)
    return out


def _solve_rec(
    ops: List[PrePostOp], lo: int, hi: int, base: int, out: np.ndarray
) -> None:
    if not ops and lo == hi:
        out[lo - base] = 0
        return
    if lo == hi:
        out[lo - base] = _solve_leaf(ops, lo)
        return
    left, right = partition_prepost(ops, lo, hi)
    mid = (lo + hi) // 2
    _solve_rec(left, lo, mid, base, out)
    _solve_rec(right, mid + 1, hi, base, out)


def prepost_distances(trace: TraceLike) -> np.ndarray:
    """Backward distance vector via the serial Prefix/Postfix recursion.

    0-based like :func:`repro.core.reference.reference_distances`.
    """
    arr = as_trace(trace)
    n = arr.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    ops = prepost_sequence(arr)
    values = solve_prepost(ops, 0, n)  # cell 0 is the sentinel
    return values[1:]
