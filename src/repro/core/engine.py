"""The production INCREMENT-AND-FREEZE engine (Sections 4, 6, 8).

This is the paper's algorithm realized the way the Section-6 analysis
suggests: **level-synchronously and data-parallel**.  At every recursion
depth, *all* subproblems live side by side in one set of flat numpy
arrays (``kind``/``t``/``r`` per operation, plus per-segment interval
bounds), and one partition step maps every parent segment to its two
children at once:

1. *Projection* is an elementwise map (the Prefix/Postfix projection
   rules are branch-free ``where`` expressions).
2. *Shrinking* — merging full-interval operations into their predecessors
   — is a segmented cluster-sum (Lemma 6.1): a cumulative sum of merge
   effects, run-length boundaries from the "kept" mask, one gather.

Each level is O(total ops) numpy work; Lemma 4.2 bounds the total ops per
level by O(n), and there are O(log n) levels — so this single
implementation is simultaneously the fast serial algorithm (its memory
traffic is sequential streams, the point of the paper) and a faithful
realization of PARALLEL-INCREMENT-AND-FREEZE's O(log² n)-span structure
(every numpy pass is a map or a scan).

Size-1 segments ("leaves") are solved in closed form: a leaf's cell value
is the summed effect of its operations up to and including the leading
``+1`` of the first Postfix, which freezes the cell.

Two interchangeable level kernels implement the partition step:

* ``"fused"`` (default) — one pass per level computes both children's
  merge masks and cluster-sums directly from the *parent* arrays (the
  projection rules are folded into the merge-effect formula, so the
  projected child arrays are never materialized) and writes the children
  into a reusable double-buffered :class:`Workspace`.  Steady-state
  levels allocate no fresh op arrays.
* ``"naive"`` — the original three-function pipeline
  (:func:`_partition_level` + two :func:`_shrink_child` calls), kept
  bit-identical as a differential-testing oracle for the fused kernel
  (see :mod:`repro.qa`).

The module exposes three layers:

* :func:`solve_prepost_arrays` — run the level loop on an arbitrary
  initial segment list (used by the external-memory and parallel
  variants, whose recursions bottom out in these in-memory segments).
* :func:`iaf_distances` / :func:`iaf_hit_rate_curve` — the whole pipeline
  for a trace: pre-process, solve, post-process.
* :func:`iaf_distances_batch` / :func:`iaf_hit_rate_curves_batch` — k
  independent traces seeded as k root segments on disjoint cell
  intervals, so one level loop carries all of them (the serving-
  throughput form: many small curve requests amortize every vectorized
  pass).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._typing import DEFAULT_DTYPE, TraceLike, as_trace, validate_dtype
from ..errors import CapacityError, ReproError
from ..metrics.memory import MemoryModel
from ..obs import NULL_SPAN, get_tracer
from ..pram.scheduler import Cost
from .hitrate import HitRateCurve, curve_from_backward_distances
from .ops import POSTFIX, PREFIX, prepost_sequence_arrays
from .prevnext import prev_next_arrays
from . import compiled as _compiled

#: Selectable level-kernel implementations (``engine_backend=``).
ENGINE_BACKENDS = ("fused", "naive", "compiled")


def _validate_backend(backend: str) -> str:
    if backend not in ENGINE_BACKENDS:
        raise ReproError(
            f"unknown engine backend {backend!r}; "
            f"choose from {ENGINE_BACKENDS}"
        )
    return backend


def _default_backend_from_env() -> Optional[str]:
    raw = os.environ.get("REPRO_ENGINE_BACKEND", "").strip()
    if not raw:
        return None
    # Rejecting bad values here — at import — turns a typo'd deployment
    # env var into an immediate ReproError instead of a solve-time one.
    return _validate_backend(raw)


#: Backend used when a call site passes ``engine_backend=None``;
#: overridable per process via ``REPRO_ENGINE_BACKEND`` (validated at
#: import time).
DEFAULT_ENGINE_BACKEND = _default_backend_from_env() or "fused"

_fallback_warned = False


def resolve_engine_backend(backend: Optional[str]) -> str:
    """Resolve an ``engine_backend`` argument to a runnable kernel name.

    ``None`` means "the process default" (``REPRO_ENGINE_BACKEND`` or
    ``"fused"``).  ``"compiled"`` degrades to ``"fused"`` — with a
    single :class:`RuntimeWarning` per process — when the compiled
    kernels are unavailable (no numba and ``REPRO_COMPILED_PURE``
    unset), so the dependency stays optional at every call site.
    """
    global _fallback_warned
    if backend is None:
        backend = DEFAULT_ENGINE_BACKEND
    _validate_backend(backend)
    if backend == "compiled" and not _compiled.is_available():
        if not _fallback_warned:
            import warnings

            warnings.warn(
                "engine_backend='compiled' requested but numba is not "
                "installed; falling back to the fused numpy kernel "
                "(pip install 'repro[compiled]' to enable it)",
                RuntimeWarning,
                stacklevel=2,
            )
            _fallback_warned = True
        return "fused"
    return backend


@dataclass
class EngineStats:
    """Instrumentation of one engine run.

    ``work`` counts operation touches across all levels; ``span_basic``
    is the Section-4 span (levels run their segments in parallel, each
    segment serially — O(n) total), ``span_parallel`` the Section-6 span
    (each level is scans and maps, O(log n) each — O(log² n) total).
    ``peak_level_ops`` drives the memory story: the engine's working set
    is proportional to it.
    """

    levels: int = 0
    work: float = 0.0
    span_basic: float = 0.0
    span_parallel: float = 0.0
    peak_level_ops: int = 0
    peak_bytes: int = 0
    ops_per_level: List[int] = field(default_factory=list)
    #: When True, per-level segment op counts are kept (the level-barrier
    #: task structure consumed by :mod:`repro.pram.simulator`).
    record_segments: bool = False
    segment_sizes_per_level: List[np.ndarray] = field(default_factory=list)

    def record_level(self, seg: "Segments", out_nbytes: int) -> None:
        """Fold one recursion level into the counters.

        The single bookkeeping point shared by the serial level loop, the
        parallel warm-up levels, and both level kernels — keeping the
        accounting identical everywhere it is measured.
        """
        m = seg.n_ops
        self.levels += 1
        self.ops_per_level.append(m)
        self.work += m
        counts = seg.counts()
        self.span_basic += float(counts.max()) if counts.size else 0.0
        self.span_parallel += math.log2(max(m, 2))
        self.peak_level_ops = max(self.peak_level_ops, m)
        self.peak_bytes = max(self.peak_bytes, seg.nbytes + out_nbytes)
        if self.record_segments:
            self.segment_sizes_per_level.append(counts.copy())

    def basic_cost(self) -> Cost:
        """Work/span of basic INCREMENT-AND-FREEZE (Theorem 4.3)."""
        return Cost(self.work, min(self.span_basic, self.work))

    def parallel_cost(self) -> Cost:
        """Work/span of PARALLEL-INCREMENT-AND-FREEZE (Theorem 6.2)."""
        return Cost(self.work, min(self.span_parallel, self.work))


@dataclass
class Segments:
    """A batch of subproblems at one recursion depth.

    ``kind``/``t``/``r`` are the concatenated operation arrays; segment
    ``s`` owns ops ``[starts[s], starts[s+1])`` and the cell interval
    ``[lo[s], hi[s]]``.

    ``w`` generalizes the encoding to **variable-size objects** (the
    Section 9.1 remark): it is the magnitude of each op's "+1 part"
    (``Increment(a, t, w)`` for a Prefix, ``Increment(t, b, w)`` for a
    Postfix).  ``w = None`` means the classic unit-weight algorithm and
    keeps the hot path free of the extra array.
    """

    kind: np.ndarray
    t: np.ndarray
    r: np.ndarray
    starts: np.ndarray  # int64, length n_segments + 1
    lo: np.ndarray
    hi: np.ndarray
    w: Optional[np.ndarray] = None

    @property
    def n_segments(self) -> int:
        return self.lo.size

    @property
    def n_ops(self) -> int:
        return int(self.starts[-1])

    @property
    def nbytes(self) -> int:
        """Logical footprint: bytes of the entries this batch *owns*.

        Computed from ``n_ops``/``n_segments`` and the element widths —
        never from the backing arrays' ``nbytes`` — so view-backed parts
        (from :func:`repro.core.parallel._split_segments`) and
        workspace-backed levels report their own size rather than the
        (possibly much larger) base buffer's.
        """
        per_op = (
            self.kind.itemsize + self.t.itemsize + self.r.itemsize
            + (self.w.itemsize if self.w is not None else 0)
        )
        per_seg = self.lo.itemsize + self.hi.itemsize
        return int(
            self.n_ops * per_op
            + self.n_segments * per_seg
            + (self.n_segments + 1) * self.starts.itemsize
        )

    def counts(self) -> np.ndarray:
        return np.diff(self.starts)

    @staticmethod
    def single(
        kind: np.ndarray, t: np.ndarray, r: np.ndarray, lo: int, hi: int,
        w: Optional[np.ndarray] = None,
    ) -> "Segments":
        """Wrap one op sequence on one interval as a batch of size 1."""
        return Segments(
            kind=np.asarray(kind, dtype=np.uint8),
            t=np.asarray(t),
            r=np.asarray(r),
            starts=np.array([0, len(kind)], dtype=np.int64),
            lo=np.array([lo], dtype=np.int64),
            hi=np.array([hi], dtype=np.int64),
            w=None if w is None else np.asarray(w),
        )


class Workspace:
    """Reusable, geometrically-grown buffer pool for the fused kernel.

    One instance double-buffers the per-level operation arrays: level
    ``L`` reads its input from side ``L % 2 ^ 1`` and writes its children
    into side ``L % 2``, so steady-state levels perform **zero** fresh
    array allocations.  A workspace can be reused across solves (the
    serving pattern: one long-lived workspace per worker absorbs every
    request's level churn after warm-up).

    ``grow_events`` records every (re)allocation as ``(level, name,
    nbytes)`` — the workspace-reuse tests assert it goes quiet after the
    first levels, and benchmarks report it as the steady-state allocation
    count.
    """

    __slots__ = ("_buffers", "grow_events", "_arange_filled", "acc_dtype")

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self.grow_events: List[Tuple[int, str, int]] = []
        self._arange_filled = 0
        self.acc_dtype = np.dtype(np.int64)

    def array(self, name: str, size: int, dtype: "np.typing.DTypeLike",
              level: int = -1) -> np.ndarray:
        """A length-``size`` view of the named buffer, growing if needed.

        Growth doubles capacity (with a small floor) so a monotone ramp
        of requests triggers O(log) reallocations total; a dtype change
        reallocates at the requested size.
        """
        dt = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dt or buf.size < size:
            if buf is not None and buf.dtype == dt:
                cap = max(size, 2 * buf.size)
            else:
                cap = size
            cap = max(cap, 64)
            buf = np.empty(cap, dtype=dt)
            self._buffers[name] = buf
            self.grow_events.append((level, name, buf.nbytes))
        return buf[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def grow_levels(self) -> List[int]:
        """Level indices at which any buffer (re)allocation happened."""
        return [level for level, _name, _nbytes in self.grow_events]

    def arange(self, size: int, level: int = -1) -> np.ndarray:
        """``np.arange(size)`` served from a pooled buffer.

        The backing buffer is filled in place (a prefix of an arange is
        an arange, so refills only happen after growth) — steady-state
        calls are a slice plus one comparison.
        """
        buf = self.array("arange", size, np.int64, level)
        if size > self._arange_filled:
            full = self._buffers["arange"]
            full.fill(1)
            full[0] = 0
            np.cumsum(full, out=full)
            self._arange_filled = full.size
        return buf

    def prime(self, seg: "Segments", backend: str = "fused") -> None:
        """Preallocate every level buffer from the root batch's shape.

        Op-indexed buffers are sized to the root's op count (plus 1/8
        slack — levels only shrink in practice, since every emitted head
        replaces a merged run) and segment-indexed buffers to the total
        cell count (an upper bound on live segments at *any* level, as
        each owns at least one cell).  After priming, a solve's level
        loop performs no allocations; pathological growth still falls
        back to doubling.  ``np.empty`` capacity is lazily backed by the
        OS, so the overshoot costs address space, not resident memory.

        ``backend`` selects the buffer set: the compiled kernels reuse
        the same gather buffers and double-buffered sides but replace
        the fused kernel's cluster-sum scratch with one slack scratch
        strip (``ck_*``) sized ops + two head slots per segment.
        """
        ops_cap = seg.n_ops + seg.n_ops // 8 + 64
        cells = (
            int((seg.hi - seg.lo + 1).sum()) if seg.n_segments else 0
        )
        seg_cap = cells + 2
        t_dt, r_dt = seg.t.dtype, seg.r.dtype
        weighted = seg.w is not None
        # The batch's total merge effect bounds every cluster-sum the
        # kernel can form (c0 prefix sums, kept-run sums, head values):
        # a child segment's effect total never exceeds its parent's, and
        # c0 scans one chunk of one level.  When that bound fits a
        # narrow ``r`` dtype the whole solve accumulates natively in it
        # — no per-chunk upcast, half the memory traffic per pass.
        acc = np.dtype(np.int64)
        if r_dt.itemsize < 8 and seg.n_ops:
            bound = int(seg.r.sum(dtype=np.int64))
            nonneg = int(seg.r.min()) >= 0
            if weighted:
                bound += int(seg.w.sum(dtype=np.int64))
                nonneg = nonneg and int(seg.w.min()) >= 0
            else:
                bound += seg.n_ops
            if nonneg and bound <= np.iinfo(r_dt).max:
                acc = r_dt
        self.acc_dtype = acc
        self.array("g_kind", ops_cap, np.uint8)
        self.array("g_t", ops_cap, t_dt)
        self.array("g_r", ops_cap, r_dt)
        if weighted:
            self.array("g_w", ops_cap, seg.w.dtype)
        if backend == "compiled":
            # Slack scratch strip: every segment's children plus two
            # head slots, then the per-segment counters, the error
            # flag, and the (2x-wide) child side buffers.
            ck_cap = ops_cap + 2 * seg_cap
            self.array("ck_kind", ck_cap, np.uint8)
            self.array("ck_t", ck_cap, t_dt)
            self.array("ck_r", ck_cap, r_dt)
            if weighted:
                self.array("ck_w", ck_cap, seg.w.dtype)
            self.array("ck_cl", seg_cap, np.int64)
            self.array("ck_cr", seg_cap, np.int64)
            self.array("ck_c2", 2 * seg_cap, np.int64)
            self.array("ck_err", 2, np.int64)
            for name in ("p_starts", "mid"):
                self.array(name, seg_cap, np.int64)
            for side in (0, 1):
                self.array(f"kind{side}", ck_cap, np.uint8)
                self.array(f"t{side}", ck_cap, t_dt)
                self.array(f"r{side}", ck_cap, r_dt)
                if weighted:
                    self.array(f"w{side}", ck_cap, seg.w.dtype)
                self.array(f"starts{side}", 2 * seg_cap + 1, np.int64)
                self.array(f"lo{side}", 2 * seg_cap, np.int64)
                self.array(f"hi{side}", 2 * seg_cap, np.int64)
            return
        self.array("c0", ops_cap + 1, acc)
        # Per-level op-indexed scratch (masks, effects, casts, scatters).
        for name in ("isp", "insl", "tmpb", "mrg", "kept"):
            self.array(name, ops_cap, np.bool_)
        self.array("eff", ops_cap, acc)
        self.array("seg_of_op", ops_cap, np.int64)
        self.array("mid_op", ops_cap, t_dt)
        self.array("hi_op", ops_cap, t_dt)
        if r_dt != acc:
            self.array("r64", ops_cap, acc)
        if weighted and seg.w.dtype != acc:
            self.array("w64", ops_cap, acc)
        self.array("sc_kind", ops_cap, np.uint8)
        self.array("sc_t", ops_cap, t_dt)
        if weighted:
            self.array("sc_w", ops_cap, seg.w.dtype)
        self.arange(ops_cap)
        # Per-child cluster-sum scratch (k- and segment-indexed).
        for tag in ("l", "r"):
            for name in ("sok", "pos"):
                self.array(f"{tag}_{name}", ops_cap, np.int64)
            for name in ("nk", "ktmp", "rk"):
                self.array(f"{tag}_{name}", ops_cap, acc)
            for name in ("kcx", "fk", "stmp", "oc", "os", "hc", "hpos"):
                self.array(f"{tag}_{name}", seg_cap, np.int64)
            for name in ("hs", "cs", "hval"):
                self.array(f"{tag}_{name}", seg_cap, acc)
            self.array(f"{tag}_ht", seg_cap, t_dt)
            for name in ("hk", "eh"):
                self.array(f"{tag}_{name}", seg_cap, np.bool_)
        if weighted:
            self.array("l_wf", seg_cap, seg.w.dtype)
        # Per-level segment-indexed scratch and the double-buffered sides.
        # Side op arrays carry the capacity bound of a level's children
        # (every kept op plus up to two heads per segment).
        for name in ("p_starts", "p_starts_c", "mid"):
            self.array(name, seg_cap, np.int64)
        for name in ("mid_t", "hi_t"):
            self.array(name, seg_cap, t_dt)
        side_cap = ops_cap + seg_cap
        for side in (0, 1):
            self.array(f"kind{side}", side_cap, np.uint8)
            self.array(f"t{side}", side_cap, t_dt)
            self.array(f"r{side}", side_cap, r_dt)
            if weighted:
                self.array(f"w{side}", side_cap, seg.w.dtype)
            self.array(f"starts{side}", seg_cap, np.int64)
            self.array(f"lo{side}", seg_cap, np.int64)
            self.array(f"hi{side}", seg_cap, np.int64)


def _solve_leaves(
    seg: Segments,
    leaf_mask: np.ndarray,
    out: np.ndarray,
    ws: Optional[Workspace] = None,
    level: int = -1,
) -> int:
    """Evaluate all size-1 segments in one vectorized pass.

    Writes each leaf's value at ``out[lo]``; returns the number of ops
    consumed (for work accounting).  Empty leaves keep value 0 (only the
    sentinel cell can be empty; its value is never read).

    With a workspace, leaf-dominated levels (the deep tail, where most
    ops belong to solved segments) take a dense path that evaluates the
    leaf formula over the level's op arrays in place instead of
    compacting the leaf ops first — fewer passes and no allocations on
    the levels where leaves are the bulk of the work.
    """
    m_all = seg.n_ops
    if ws is not None and m_all:
        n_segs = seg.n_segments
        cnt = ws.array("l_stmp", n_segs, np.int64, level)
        np.subtract(seg.starts[1:], seg.starts[:-1], out=cnt)
        leaf_ops = int(np.add.reduce(cnt, where=leaf_mask))
        if leaf_ops == 0:
            return 0
        if 2 * leaf_ops >= m_all:
            return _solve_leaves_dense(seg, leaf_mask, cnt, out, ws, level)
    counts = seg.counts()[leaf_mask]
    starts = seg.starts[:-1][leaf_mask]
    lo = seg.lo[leaf_mask]
    nonempty = counts > 0
    if not nonempty.any():
        return 0
    counts, starts, lo = counts[nonempty], starts[nonempty], lo[nonempty]
    # Compact the leaf ops into their own contiguous arrays.
    take = _gather_indices(starts, counts)
    kind = seg.kind[take]
    r = seg.r[take].astype(np.int64, copy=False)
    m = kind.size
    new_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
    )
    if seg.w is None:
        effects = 1 + r
        w_at = np.ones(m, dtype=np.int64)
    else:
        w = seg.w[take].astype(np.int64, copy=False)
        effects = w + r
        w_at = w
    c0 = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(effects)])
    pf_idx = np.where(kind == POSTFIX, np.arange(m, dtype=np.int64), m)
    first_pf = np.minimum.reduceat(pf_idx, new_starts[:-1])
    ends = new_starts[1:]
    has_pf = first_pf < ends
    # c0 has m+1 entries, and first_pf <= m always, so both branches index
    # safely even though np.where evaluates them eagerly; the w_at gather
    # clamps first_pf for the no-postfix rows whose value is discarded.
    value = np.where(
        has_pf,
        c0[first_pf] - c0[new_starts[:-1]]
        + w_at[np.minimum(first_pf, m - 1)],
        c0[ends] - c0[new_starts[:-1]],
    )
    out[lo] = value
    return m


def _solve_leaves_dense(
    seg: Segments,
    leaf_mask: np.ndarray,
    cnt: np.ndarray,
    out: np.ndarray,
    ws: Workspace,
    level: int,
) -> int:
    """Leaf-dominated levels: evaluate every segment, write leaf rows.

    A leaf's value is the sum of its ops' effects up to and including
    the ``w`` part of its first Postfix (or of all ops when it has
    none).  Evaluating that over the level's arrays as-is — one effect
    cumsum plus a segmented first-Postfix ``reduceat`` — skips the
    per-op compaction gather entirely; values computed for the few
    internal segments are simply not written.
    """
    m = seg.n_ops
    n_segs = seg.n_segments
    starts = seg.starts
    acc = ws.acc_dtype
    eff = ws.array("eff", m, acc, level)
    if seg.w is None:
        np.add(seg.r, 1, out=eff)
    else:
        np.add(seg.r, seg.w, out=eff)
    c0 = ws.array("c0", m + 1, acc, level)
    c0[0] = 0
    np.cumsum(eff, out=c0[1:])
    # First in-segment Postfix position, m-padded so trailing empty
    # segments (whose start index equals m) reduce over the sentinel.
    isp = ws.array("isp", m, np.bool_, level)
    np.equal(seg.kind, POSTFIX, out=isp)
    pf = ws.array("seg_of_op", m + 1, np.int64, level)
    pf.fill(m)
    np.copyto(pf[:m], ws.arange(m, level), where=isp)
    fp = ws.array("mid", n_segs, np.int64, level)
    np.minimum.reduceat(pf, starts[:-1], out=fp)
    has_pf = ws.array("l_hk", n_segs, np.bool_, level)
    np.less(fp, starts[1:], out=has_pf)
    sel = ws.array("l_fk", n_segs, np.int64, level)
    np.copyto(sel, starts[1:])
    np.copyto(sel, fp, where=has_pf)
    value = ws.array("l_hs", n_segs, acc, level)
    np.take(c0, sel, out=value, mode="wrap")
    c_start = ws.array("l_cs", n_segs, acc, level)
    np.take(c0, starts[:-1], out=c_start, mode="wrap")
    np.subtract(value, c_start, out=value)
    if seg.w is None:
        np.add(value, has_pf, out=value)
    else:
        np.minimum(fp, m - 1, out=fp)
        w_at = ws.array("l_wf", n_segs, seg.w.dtype, level)
        np.take(seg.w, fp, out=w_at, mode="wrap")
        np.multiply(w_at, has_pf, out=w_at)
        np.add(value, w_at, out=value)
    write = ws.array("r_hk", n_segs, np.bool_, level)
    np.greater(cnt, 0, out=write)
    np.logical_and(write, leaf_mask, out=write)
    idx = np.flatnonzero(write)
    lo_w = ws.array("l_hpos", idx.size, np.int64, level)
    np.take(seg.lo, idx, out=lo_w, mode="wrap")
    v_w = ws.array("l_hval", idx.size, acc, level)
    np.take(value, idx, out=v_w, mode="wrap")
    out[lo_w] = v_w
    return int(np.add.reduce(cnt, where=write))


def _gather_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices selecting ``counts[s]`` items from each ``starts[s]``.

    Standard prefix-sum gather: equivalent to
    ``concatenate([arange(st, st+c) for st, c in zip(starts, counts)])``
    without the Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
    )
    idx = np.arange(total, dtype=np.int64)
    seg_of = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    return starts[seg_of] + (idx - out_starts[:-1][seg_of])


def _check_head_overflow(encoded: np.ndarray, dtype: np.dtype) -> None:
    """Refuse to write shrink-head effects a narrow ``r`` cannot hold.

    With 32-bit counters (the Section 9.5 fast path) an adversarial
    weighted input can accumulate a merged-run effect past the dtype's
    range; the silent wrap would corrupt every distance downstream of the
    head.  Raising keeps the failure at the first unrepresentable write.
    """
    if encoded.size == 0 or np.dtype(dtype).itemsize >= 8:
        return
    info = np.iinfo(dtype)
    mx = int(encoded.max())
    mn = int(encoded.min())
    if mx > info.max or mn < info.min:
        bad = mx if mx > info.max else mn
        raise CapacityError(
            f"shrink head effect {bad} does not fit in {np.dtype(dtype)}; "
            f"rerun with dtype=int64 (Section 9.5)"
        )


def _shrink_child(
    kind_c: np.ndarray,
    t_c: np.ndarray,
    r_c: np.ndarray,
    child_hi_op: np.ndarray,
    child_hi_seg: np.ndarray,
    seg_of_op: np.ndarray,
    starts: np.ndarray,
    w_c: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           Optional[np.ndarray]]:
    """Segmented shrink: merge full-interval ops into their predecessors.

    Inputs are one child batch (already projected): per-op arrays, the
    child's upper bound per op and per segment, the op→segment map, and
    the segment offsets.  Returns the shrunk ``(kind, t, r, counts, w)``.

    This is the vectorized cluster-sum of Lemma 6.1: ``mergeable`` ops are
    the zero-flagged pairs carrying effect ``w + r`` (``1 + r`` in the
    unit-weight case); each kept op absorbs the run of mergeable effects
    that follows it (up to the next kept op or its segment's end); a
    leading run becomes a head op unless its net effect is zero.
    """
    m = kind_c.size
    n_segs = child_hi_seg.size
    mergeable = (kind_c == PREFIX) & (t_c == child_hi_op)
    if w_c is None:
        eff = np.where(mergeable, 1 + r_c.astype(np.int64), 0)
    else:
        eff = np.where(
            mergeable, w_c.astype(np.int64) + r_c.astype(np.int64), 0
        )
    c0 = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(eff)])
    kept = ~mergeable
    kept_idx = np.flatnonzero(kept)
    k = kept_idx.size

    kept_counts = (
        np.bincount(seg_of_op[kept_idx], minlength=n_segs)
        if k
        else np.zeros(n_segs, dtype=np.int64)
    )
    kcum = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(kept_counts)]
    )

    # Run of mergeable ops after each kept op, clipped to its segment.
    if k:
        next_kept = np.empty(k, dtype=np.int64)
        next_kept[:-1] = kept_idx[1:]
        next_kept[-1] = m
        seg_of_kept = seg_of_op[kept_idx]
        boundary = np.minimum(next_kept, starts[seg_of_kept + 1])
        run = c0[boundary] - c0[kept_idx + 1]
        r_kept = r_c[kept_idx].astype(np.int64) + run
    else:
        seg_of_kept = np.zeros(0, dtype=np.int64)
        r_kept = np.zeros(0, dtype=np.int64)

    # Leading run per segment -> head op when its net effect is nonzero.
    first_kept = starts[1:].astype(np.int64).copy()
    has_kept = kept_counts > 0
    if k:
        first_kept[has_kept] = kept_idx[kcum[:-1][has_kept]]
    head_sum = c0[first_kept] - c0[starts[:-1]]
    emit_head = head_sum != 0

    out_counts = kept_counts + emit_head
    out_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(out_counts)]
    )
    total = int(out_starts[-1])
    kind_out = np.empty(total, dtype=np.uint8)
    t_out = np.empty(total, dtype=t_c.dtype)
    r_out = np.empty(total, dtype=r_c.dtype)

    w_out = None if w_c is None else np.empty(total, dtype=w_c.dtype)

    head_pos = out_starts[:-1][emit_head]
    kind_out[head_pos] = PREFIX
    t_out[head_pos] = child_hi_seg[emit_head]
    if w_c is None:
        # Unit-weight encoding: a full-interval Prefix(hi, r) has effect
        # 1 + r, so a head of net effect e is written as r = e - 1.
        head_vals = head_sum[emit_head] - 1
        _check_head_overflow(head_vals, r_c.dtype)
        r_out[head_pos] = head_vals.astype(r_c.dtype)
    else:
        # Weighted encoding: heads carry w = 0 and the whole effect in r.
        head_vals = head_sum[emit_head]
        _check_head_overflow(head_vals, r_c.dtype)
        r_out[head_pos] = head_vals.astype(r_c.dtype)
        w_out[head_pos] = 0

    if k:
        rank = np.arange(k, dtype=np.int64) - kcum[:-1][seg_of_kept]
        pos = out_starts[:-1][seg_of_kept] + emit_head[seg_of_kept] + rank
        kind_out[pos] = kind_c[kept_idx]
        t_out[pos] = t_c[kept_idx]
        r_out[pos] = r_kept.astype(r_c.dtype)
        if w_c is not None:
            w_out[pos] = w_c[kept_idx]

    return kind_out, t_out, r_out, out_counts, w_out


def _partition_level(seg: Segments, internal_mask: np.ndarray) -> Segments:
    """One level of the recursion: split every internal segment in half."""
    all_internal = bool(internal_mask.all())
    counts = seg.counts() if all_internal else seg.counts()[internal_mask]
    lo = seg.lo if all_internal else seg.lo[internal_mask]
    hi = seg.hi if all_internal else seg.hi[internal_mask]
    mid = (lo + hi) // 2

    if all_internal:
        # Common case away from the bottom of the recursion: every segment
        # splits, so the op arrays can be used in place (no gather copy).
        kind, t, r, w = seg.kind, seg.t, seg.r, seg.w
        new_starts = seg.starts
    else:
        starts = seg.starts[:-1][internal_mask]
        take = _gather_indices(starts, counts)
        kind = seg.kind[take]
        t = seg.t[take]
        r = seg.r[take]
        w = None if seg.w is None else seg.w[take]
        new_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
    seg_of_op = np.repeat(np.arange(lo.size, dtype=np.int64), counts)

    mid_op = mid[seg_of_op].astype(t.dtype, copy=False)
    hi_op = hi[seg_of_op].astype(t.dtype, copy=False)
    is_postfix = kind == POSTFIX

    # Left child [lo, mid]: ops with t <= mid are unchanged; others become
    # full-interval Prefixes.  A projected-out Prefix keeps its w+r effect
    # (its "+w part" covered the whole child); a projected-out Postfix
    # contributes only its trailing r.  In the unit-weight encoding the
    # full-interval form Prefix(mid, r') has effect 1 + r', hence the -1s;
    # in the weighted encoding full ops carry w = 0 and the effect in r.
    inside_l = t <= mid_op
    kind_l = np.where(inside_l, kind, PREFIX).astype(np.uint8)
    t_l = np.where(inside_l, t, mid_op)
    if w is None:
        r_l = np.where(inside_l, r, np.where(is_postfix, r - 1, r))
        w_l = None
    else:
        r_l = np.where(inside_l, r, np.where(is_postfix, r, w + r))
        w_l = np.where(inside_l, w, 0)
    kl, tl, rl, counts_l, wl = _shrink_child(
        kind_l, t_l, r_l, mid_op, mid.astype(t.dtype), seg_of_op,
        new_starts, w_l,
    )

    # Right child [mid+1, hi]: mirrored rules.
    inside_r = t > mid_op
    kind_r = np.where(inside_r, kind, PREFIX).astype(np.uint8)
    t_r = np.where(inside_r, t, hi_op)
    if w is None:
        r_r = np.where(inside_r, r, np.where(is_postfix, r, r - 1))
        w_r = None
    else:
        r_r = np.where(inside_r, r, np.where(is_postfix, w + r, r))
        w_r = np.where(inside_r, w, 0)
    kr, tr, rr, counts_r, wr = _shrink_child(
        kind_r, t_r, r_r, hi_op, hi.astype(t.dtype), seg_of_op,
        new_starts, w_r,
    )

    all_counts = np.concatenate([counts_l, counts_r])
    return Segments(
        kind=np.concatenate([kl, kr]),
        t=np.concatenate([tl, tr]),
        r=np.concatenate([rl, rr]),
        starts=np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(all_counts)]
        ),
        lo=np.concatenate([lo, mid + 1]),
        hi=np.concatenate([mid, hi]),
        w=None if wl is None else np.concatenate([wl, wr]),
    )


class _ChildPlan:
    """Cluster-sum results for one child, pending the output write."""

    __slots__ = ("kept_idx", "seg_of_kept", "r_kept", "head_sum",
                 "emit_head", "out_counts", "total")

    def __init__(self, kept_idx, seg_of_kept, r_kept, head_sum, emit_head,
                 out_counts):
        self.kept_idx = kept_idx
        self.seg_of_kept = seg_of_kept
        self.r_kept = r_kept
        self.head_sum = head_sum
        self.emit_head = emit_head
        self.out_counts = out_counts
        self.total = int(out_counts.sum())


def _fused_plan_child(
    tag: str,
    kept: np.ndarray,
    eff: np.ndarray,
    r64: np.ndarray,
    starts: np.ndarray,
    seg_of_op: np.ndarray,
    n_segs: int,
    c0: np.ndarray,
    ws: Workspace,
    level: int,
) -> _ChildPlan:
    """Lemma 6.1's cluster-sum over one child, without materializing it.

    ``eff`` already folds the projection rules into the merge effects
    (and is zero on kept ops), so this works directly on the parent's
    arrays; every intermediate lives in a ``tag``-prefixed workspace
    buffer, so the only fresh allocations are the two whose size is the
    data (``flatnonzero`` and ``bincount``).
    """
    m = eff.size
    acc = c0.dtype
    c0[0] = 0
    np.cumsum(eff, out=c0[1:])
    kept_idx = np.flatnonzero(kept)
    k = kept_idx.size
    if k:
        seg_of_kept = np.take(
            seg_of_op, kept_idx, out=ws.array(f"{tag}_sok", k, np.int64,
                                              level)
        , mode="wrap")
        kept_counts = np.bincount(seg_of_kept, minlength=n_segs)
        kcum_excl = ws.array(f"{tag}_kcx", n_segs, np.int64, level)
        kcum_excl[0] = 0
        np.cumsum(kept_counts[:-1], out=kcum_excl[1:])
        has_kept = np.greater(
            kept_counts, 0, out=ws.array(f"{tag}_hk", n_segs, np.bool_,
                                         level)
        )
        # A kept op's merge run ends at the next kept op in its segment,
        # and c0 is flat across kept ops (their effect is zero), so the
        # run-sum is the shifted difference of c0 sampled at the kept
        # positions; only each segment's *last* kept op — whose run
        # extends to the segment end instead — needs a patch below.
        c0k = ws.array(f"{tag}_nk", k, acc, level)
        np.take(c0, kept_idx, out=c0k, mode="wrap")
        r_kept = ws.array(f"{tag}_rk", k, acc, level)
        r_kept[:-1] = c0k[1:]
        r_kept[-1] = 0
        np.subtract(r_kept, c0k, out=r_kept)
        r64k = ws.array(f"{tag}_ktmp", k, acc, level)
        np.take(r64, kept_idx, out=r64k, mode="wrap")
        np.add(r_kept, r64k, out=r_kept)
        last_rank = ws.array(f"{tag}_stmp", n_segs, np.int64, level)
        np.add(kcum_excl, kept_counts, out=last_rank)
        np.subtract(last_rank, 1, out=last_rank)
        lr = last_rank[has_kept]
        r_kept[lr] = c0[starts[1:]][has_kept] - c0k[lr] + r64k[lr]
    else:
        seg_of_kept = np.zeros(0, dtype=np.int64)
        kept_counts = np.zeros(n_segs, dtype=np.int64)
        r_kept = np.zeros(0, dtype=acc)
    first_kept = ws.array(f"{tag}_fk", n_segs, np.int64, level)
    np.copyto(first_kept, starts[1:])
    if k:
        stmp = ws.array(f"{tag}_stmp", n_segs, np.int64, level)
        np.minimum(kcum_excl, k - 1, out=stmp)
        np.take(kept_idx, stmp, out=stmp, mode="wrap")
        np.copyto(first_kept, stmp, where=has_kept)
    head_sum = ws.array(f"{tag}_hs", n_segs, acc, level)
    np.take(c0, first_kept, out=head_sum, mode="wrap")
    c_start = ws.array(f"{tag}_cs", n_segs, acc, level)
    np.take(c0, starts[:-1], out=c_start, mode="wrap")
    np.subtract(head_sum, c_start, out=head_sum)
    emit_head = np.not_equal(
        head_sum, 0, out=ws.array(f"{tag}_eh", n_segs, np.bool_, level)
    )
    out_counts = ws.array(f"{tag}_oc", n_segs, np.int64, level)
    np.add(kept_counts, emit_head, out=out_counts)
    return _ChildPlan(kept_idx, seg_of_kept, r_kept, head_sum, emit_head,
                      out_counts)


def _fused_write_child(
    plan: _ChildPlan,
    tag: str,
    kind: np.ndarray,
    t: np.ndarray,
    w: Optional[np.ndarray],
    head_t: np.ndarray,
    base: int,
    kind_out: np.ndarray,
    t_out: np.ndarray,
    r_out: np.ndarray,
    w_out: Optional[np.ndarray],
    ws: Workspace,
    level: int,
) -> None:
    """Scatter one planned child into the level's output arrays.

    Heads and kept ops land at ``base + local position``; kept ops gather
    their ``kind``/``t``/``w`` straight from the *parent* arrays (a kept
    op's projection is the identity — only its ``r`` absorbed a run).
    """
    emit_head = plan.emit_head
    n_segs = emit_head.size
    out_starts = ws.array(f"{tag}_os", n_segs, np.int64, level)
    out_starts[0] = 0
    np.cumsum(plan.out_counts[:-1], out=out_starts[1:])
    eh_idx = np.flatnonzero(emit_head)
    h = eh_idx.size
    if h:
        head_pos = ws.array(f"{tag}_hpos", h, np.int64, level)
        np.take(out_starts, eh_idx, out=head_pos, mode="wrap")
        if base:
            np.add(head_pos, base, out=head_pos)
        kind_out[head_pos] = PREFIX
        ht = ws.array(f"{tag}_ht", h, head_t.dtype, level)
        np.take(head_t, eh_idx, out=ht, mode="wrap")
        t_out[head_pos] = ht
        head_vals = ws.array(f"{tag}_hval", h, plan.head_sum.dtype, level)
        np.take(plan.head_sum, eh_idx, out=head_vals, mode="wrap")
        if w_out is None:
            # Unit-weight encoding: a full-interval Prefix(hi, r) has
            # effect 1 + r, so a head of net effect e is written r = e-1.
            np.subtract(head_vals, 1, out=head_vals)
        _check_head_overflow(head_vals, r_out.dtype)
        r_out[head_pos] = head_vals
        if w_out is not None:
            w_out[head_pos] = 0
    k = plan.kept_idx.size
    if k:
        # Position of kept op j is its global kept-rank plus the number of
        # heads emitted in segments up to and including its own.
        hcum = ws.array(f"{tag}_hc", n_segs, np.int64, level)
        np.cumsum(emit_head, out=hcum)
        pos = ws.array(f"{tag}_pos", k, np.int64, level)
        np.take(hcum, plan.seg_of_kept, out=pos, mode="wrap")
        np.add(pos, ws.arange(k, level), out=pos)
        if base:
            np.add(pos, base, out=pos)
        sc_kind = ws.array("sc_kind", k, np.uint8, level)
        np.take(kind, plan.kept_idx, out=sc_kind, mode="wrap")
        kind_out[pos] = sc_kind
        sc_t = ws.array("sc_t", k, t.dtype, level)
        np.take(t, plan.kept_idx, out=sc_t, mode="wrap")
        t_out[pos] = sc_t
        r_out[pos] = plan.r_kept
        if w_out is not None:
            sc_w = ws.array("sc_w", k, w.dtype, level)
            np.take(w, plan.kept_idx, out=sc_w, mode="wrap")
            w_out[pos] = sc_w


#: Target operations per cache block of the fused level kernel.  The
#: pass pipeline touches roughly a dozen live scratch arrays; blocks of
#: ~64k ops keep that working set inside a per-core L2 even on batched
#: multi-million-op levels, where unblocked passes would stream every
#: array through the last-level cache ~45 times per level.
_LEVEL_CHUNK_OPS = int(os.environ.get("REPRO_ENGINE_CHUNK_OPS", 1 << 16))


def _level_chunks(
    starts: np.ndarray, n_segs: int, m: int, chunk_ops: int
) -> Tuple[Tuple[int, int], ...]:
    """Consecutive segment ranges holding roughly ``chunk_ops`` ops each.

    Chunk boundaries always align with segment boundaries (a segment is
    the kernel's planning unit), so a single segment larger than
    ``chunk_ops`` forms its own chunk.
    """
    if n_segs <= 1 or m <= chunk_ops:
        return ((0, n_segs),)
    cuts = [0]
    while cuts[-1] < n_segs:
        target = int(starts[cuts[-1]]) + chunk_ops
        nxt = int(np.searchsorted(starts, target, side="right")) - 1
        cuts.append(min(max(nxt, cuts[-1] + 1), n_segs))
    return tuple(zip(cuts[:-1], cuts[1:]))


def _partition_level_fused(
    seg: Segments, internal_mask: np.ndarray, ws: Workspace, level: int
) -> Segments:
    """One recursion level as a fused, cache-blocked pass over the parent.

    Merge masks and cluster-sum effects for *both* children are derived
    directly from the parent's ``kind``/``t``/``r`` over one shared
    ``seg_of_op``/``starts`` set — the per-child projected arrays of the
    naive pipeline are folded into the effect formula and never built.
    The level runs in segment-aligned chunks of ~``_LEVEL_CHUNK_OPS``
    ops (segments are mutually independent), so the scratch arrays of
    the pass pipeline stay cache-resident however large the level is;
    children land chunk-contiguously (``[left, right]`` per chunk) in
    the workspace side ``level % 2``, double-buffered against the
    parent's side.  Every intermediate runs through ``out=`` into
    workspace buffers: in steady state a level allocates nothing whose
    size is O(ops).
    """
    side = level & 1
    acc = ws.acc_dtype
    all_internal = bool(internal_mask.all())
    if all_internal:
        n_segs = seg.n_segments
        lo, hi = seg.lo, seg.hi
        kind, t, r, w = seg.kind, seg.t, seg.r, seg.w
        starts = seg.starts
    else:
        counts = seg.counts()[internal_mask]
        n_segs = counts.size
        lo = seg.lo[internal_mask]
        hi = seg.hi[internal_mask]
        src_starts = seg.starts[:-1][internal_mask]
        take = _gather_indices(src_starts, counts)
        m_in = take.size
        kind = np.take(seg.kind, take,
                       out=ws.array("g_kind", m_in, np.uint8, level), mode="wrap")
        t = np.take(seg.t, take,
                    out=ws.array("g_t", m_in, seg.t.dtype, level), mode="wrap")
        r = np.take(seg.r, take,
                    out=ws.array("g_r", m_in, seg.r.dtype, level), mode="wrap")
        w = (None if seg.w is None else
             np.take(seg.w, take,
                     out=ws.array("g_w", m_in, seg.w.dtype, level), mode="wrap"))
        starts = ws.array("p_starts", n_segs + 1, np.int64, level)
        starts[0] = 0
        np.cumsum(counts, out=starts[1:])
    m = kind.size

    mid = ws.array("mid", n_segs, np.int64, level)
    np.add(lo, hi, out=mid)
    np.floor_divide(mid, 2, out=mid)
    if t.dtype == np.int64:
        mid_t, hi_t = mid, hi
    else:
        mid_t = ws.array("mid_t", n_segs, t.dtype, level)
        np.copyto(mid_t, mid, casting="unsafe")
        hi_t = ws.array("hi_t", n_segs, t.dtype, level)
        np.copyto(hi_t, hi, casting="unsafe")

    # Output capacity: each kept op lands in exactly one child (the kept
    # sets are disjoint), plus at most one head per child per segment.
    cap = m + 2 * n_segs
    kind_out = ws.array(f"kind{side}", cap, np.uint8, level)
    t_out = ws.array(f"t{side}", cap, t.dtype, level)
    r_out = ws.array(f"r{side}", cap, r.dtype, level)
    w_out = (None if w is None
             else ws.array(f"w{side}", cap, w.dtype, level))
    starts_out = ws.array(f"starts{side}", 2 * n_segs + 1, np.int64, level)
    lo_out = ws.array(f"lo{side}", 2 * n_segs, np.int64, level)
    hi_out = ws.array(f"hi{side}", 2 * n_segs, np.int64, level)
    starts_out[0] = 0

    # Narrowed batches halve every op-array's footprint, so twice the
    # ops fit the same cache block.
    chunk_ops = _LEVEL_CHUNK_OPS * (2 if acc.itemsize < 8 else 1)
    out_op = 0
    out_seg = 0
    for s0, s1 in _level_chunks(starts, n_segs, m, chunk_ops):
        o0, o1 = int(starts[s0]), int(starts[s1])
        mc, nsc = o1 - o0, s1 - s0
        kind_c, t_c, r_c = kind[o0:o1], t[o0:o1], r[o0:o1]
        w_c = None if w is None else w[o0:o1]
        mid_c = mid[s0:s1]
        mid_t_c, hi_t_c = mid_t[s0:s1], hi_t[s0:s1]
        if o0:
            starts_c = ws.array("p_starts_c", nsc + 1, np.int64, level)
            np.subtract(starts[s0:s1 + 1], o0, out=starts_c)
        else:
            starts_c = starts[s0:s1 + 1]

        seg_of_op = ws.array("seg_of_op", mc, np.int64, level)
        seg_of_op.fill(0)
        if nsc > 1 and mc:
            # Ones at each later segment's first op, then an inclusive
            # scan.  Empty mid segments yield duplicate boundaries
            # (add.at accumulates); empty *trailing* segments yield
            # boundaries == mc, clipped via searchsorted.
            bounds = starts_c[1:-1]
            nb = int(np.searchsorted(bounds, mc, side="left"))
            np.add.at(seg_of_op, bounds[:nb], 1)
            np.cumsum(seg_of_op, out=seg_of_op)
        mid_op = np.take(mid_t_c, seg_of_op,
                         out=ws.array("mid_op", mc, t.dtype, level), mode="wrap")
        hi_op = np.take(hi_t_c, seg_of_op,
                        out=ws.array("hi_op", mc, t.dtype, level), mode="wrap")
        is_prefix = np.equal(kind_c, PREFIX,
                             out=ws.array("isp", mc, np.bool_, level))
        inside_l = np.less_equal(t_c, mid_op,
                                 out=ws.array("insl", mc, np.bool_, level))
        if r.dtype == acc:
            r64 = r_c
        else:
            r64 = ws.array("r64", mc, acc, level)
            np.copyto(r64, r_c, casting="unsafe")
        if w is None:
            w64 = None
        elif w.dtype == acc:
            w64 = w_c
        else:
            w64 = ws.array("w64", mc, acc, level)
            np.copyto(w64, w_c, casting="unsafe")
        c0 = ws.array("c0", mc + 1, acc, level)
        eff = ws.array("eff", mc, acc, level)
        mrg = ws.array("mrg", mc, np.bool_, level)
        tmpb = ws.array("tmpb", mc, np.bool_, level)
        kept = ws.array("kept", mc, np.bool_, level)

        # Left child [lo, mid].  Ops projected out of the child (t > mid)
        # and in-child full-interval Prefixes (t == mid) are exactly the
        # mergeable set; a mergeable op's effect is r plus its "+w part"
        # when that part covers the child — for the left child, iff the
        # op is a Prefix.
        np.equal(t_c, mid_op, out=tmpb)
        np.logical_and(tmpb, is_prefix, out=tmpb)
        np.logical_not(inside_l, out=mrg)
        np.logical_or(mrg, tmpb, out=mrg)
        np.logical_not(mrg, out=kept)
        if w64 is None:
            np.add(r64, is_prefix, out=eff)
        else:
            np.multiply(w64, is_prefix, out=eff)
            np.add(eff, r64, out=eff)
        np.multiply(eff, mrg, out=eff)
        plan_l = _fused_plan_child("l", kept, eff, r64, starts_c,
                                   seg_of_op, nsc, c0, ws, level)

        # Right child [mid+1, hi]: the "+w part" covers the child iff the
        # op is a Postfix or lives inside the child (a Prefix at t == hi).
        np.equal(t_c, hi_op, out=tmpb)
        np.logical_and(tmpb, is_prefix, out=tmpb)
        np.logical_or(inside_l, tmpb, out=mrg)
        np.logical_not(mrg, out=kept)
        covers_r = tmpb  # reuse: covers_r = ~(is_prefix & inside_l)
        np.logical_and(is_prefix, inside_l, out=covers_r)
        np.logical_not(covers_r, out=covers_r)
        if w64 is None:
            np.add(r64, covers_r, out=eff)
        else:
            np.multiply(w64, covers_r, out=eff)
            np.add(eff, r64, out=eff)
        np.multiply(eff, mrg, out=eff)
        plan_r = _fused_plan_child("r", kept, eff, r64, starts_c,
                                   seg_of_op, nsc, c0, ws, level)

        _fused_write_child(plan_l, "l", kind_c, t_c, w_c, mid_t_c, out_op,
                           kind_out, t_out, r_out, w_out, ws, level)
        _fused_write_child(plan_r, "r", kind_c, t_c, w_c, hi_t_c,
                           out_op + plan_l.total,
                           kind_out, t_out, r_out, w_out, ws, level)

        so = starts_out[out_seg:out_seg + 2 * nsc + 1]
        np.cumsum(plan_l.out_counts, out=so[1:nsc + 1])
        np.cumsum(plan_r.out_counts, out=so[nsc + 1:])
        if out_op:
            np.add(so[1:nsc + 1], out_op, out=so[1:nsc + 1])
        np.add(so[nsc + 1:], out_op + plan_l.total, out=so[nsc + 1:])
        np.copyto(lo_out[out_seg:out_seg + nsc], lo[s0:s1])
        np.add(mid_c, 1, out=lo_out[out_seg + nsc:out_seg + 2 * nsc])
        np.copyto(hi_out[out_seg:out_seg + nsc], mid_c)
        np.copyto(hi_out[out_seg + nsc:out_seg + 2 * nsc], hi[s0:s1])
        out_op += plan_l.total + plan_r.total
        out_seg += 2 * nsc

    return Segments(kind=kind_out[:out_op], t=t_out[:out_op],
                    r=r_out[:out_op], starts=starts_out, lo=lo_out,
                    hi=hi_out,
                    w=None if w_out is None else w_out[:out_op])


def _partition_level_compiled(
    seg: Segments, internal_mask: np.ndarray, ws: Workspace, level: int
) -> Segments:
    """One recursion level via the compiled (numba) partition kernel.

    The kernel runs one serial pass per (segment, child) and prange's
    over segments — the scalar form of the fused kernel's cluster-sum
    shrink, bit-identical by construction (same merge/effect rules,
    int64 accumulation, truncating narrow stores).  Children land in a
    slack scratch strip (two head slots of headroom per segment, so no
    counting pre-pass is needed) and are compacted into the double-
    buffered side arrays.  Unlike the fused kernel's chunk-contiguous
    ``[left…, right…]`` blocks, children interleave per segment
    (``left0, right0, left1, …``) — segment order within a level is
    free: distances are exact either way and the per-level stats are
    multiset-invariant.
    """
    side = level & 1
    all_internal = bool(internal_mask.all())
    if all_internal:
        n_segs = seg.n_segments
        lo, hi = seg.lo, seg.hi
        kind, t, r, w = seg.kind, seg.t, seg.r, seg.w
        starts = seg.starts
    else:
        counts = seg.counts()[internal_mask]
        n_segs = counts.size
        lo = seg.lo[internal_mask]
        hi = seg.hi[internal_mask]
        src_starts = seg.starts[:-1][internal_mask]
        take = _gather_indices(src_starts, counts)
        m_in = take.size
        kind = np.take(seg.kind, take,
                       out=ws.array("g_kind", m_in, np.uint8, level), mode="wrap")
        t = np.take(seg.t, take,
                    out=ws.array("g_t", m_in, seg.t.dtype, level), mode="wrap")
        r = np.take(seg.r, take,
                    out=ws.array("g_r", m_in, seg.r.dtype, level), mode="wrap")
        w = (None if seg.w is None else
             np.take(seg.w, take,
                     out=ws.array("g_w", m_in, seg.w.dtype, level), mode="wrap"))
        starts = ws.array("p_starts", n_segs + 1, np.int64, level)
        starts[0] = 0
        np.cumsum(counts, out=starts[1:])
    m = kind.size

    mid = ws.array("mid", n_segs, np.int64, level)
    np.add(lo, hi, out=mid)
    np.floor_divide(mid, 2, out=mid)
    lo = np.ascontiguousarray(lo)
    hi = np.ascontiguousarray(hi)
    starts = np.ascontiguousarray(starts)

    cap = m + 2 * n_segs
    sck = ws.array("ck_kind", cap, np.uint8, level)
    sct = ws.array("ck_t", cap, t.dtype, level)
    scr = ws.array("ck_r", cap, r.dtype, level)
    cnt_l = ws.array("ck_cl", n_segs, np.int64, level)
    cnt_r = ws.array("ck_cr", n_segs, np.int64, level)
    err = ws.array("ck_err", 2, np.int64, level)
    err[:] = 0
    if r.dtype.itemsize < 8:
        info = np.iinfo(r.dtype)
        check, r_min, r_max = True, int(info.min), int(info.max)
    else:
        check, r_min, r_max = False, 0, 0
    if w is None:
        _compiled.partition_segments(
            kind, t, r, starts, mid, hi, sck, sct, scr,
            cnt_l, cnt_r, err, check, r_min, r_max,
        )
    else:
        scw = ws.array("ck_w", cap, w.dtype, level)
        _compiled.partition_segments_w(
            kind, t, r, w, starts, mid, hi, sck, sct, scr, scw,
            cnt_l, cnt_r, err, check, r_min, r_max,
        )
    if err[0]:
        raise CapacityError(
            f"shrink head effect {int(err[1])} does not fit in "
            f"{r.dtype}; rerun with dtype=int64 (Section 9.5)"
        )

    counts2 = ws.array("ck_c2", 2 * n_segs, np.int64, level)
    counts2[0::2] = cnt_l
    counts2[1::2] = cnt_r
    starts_out = ws.array(f"starts{side}", 2 * n_segs + 1, np.int64, level)
    starts_out[0] = 0
    np.cumsum(counts2, out=starts_out[1:])
    total = int(starts_out[-1])

    kind_out = ws.array(f"kind{side}", cap, np.uint8, level)
    t_out = ws.array(f"t{side}", cap, t.dtype, level)
    r_out = ws.array(f"r{side}", cap, r.dtype, level)
    if w is None:
        w_out = None
        _compiled.compact_children(sck, sct, scr, starts, cnt_l, cnt_r,
                                   starts_out, kind_out, t_out, r_out)
    else:
        w_out = ws.array(f"w{side}", cap, w.dtype, level)
        _compiled.compact_children_w(sck, sct, scr, scw, starts, cnt_l,
                                     cnt_r, starts_out, kind_out, t_out,
                                     r_out, w_out)

    lo_out = ws.array(f"lo{side}", 2 * n_segs, np.int64, level)
    hi_out = ws.array(f"hi{side}", 2 * n_segs, np.int64, level)
    lo_out[0::2] = lo
    np.add(mid, 1, out=lo_out[1::2])
    hi_out[0::2] = mid
    hi_out[1::2] = hi
    return Segments(kind=kind_out[:total], t=t_out[:total],
                    r=r_out[:total], starts=starts_out, lo=lo_out,
                    hi=hi_out,
                    w=None if w_out is None else w_out[:total])


def _solve_leaves_compiled(seg: Segments, out: np.ndarray) -> int:
    """Leaf pass via the compiled kernel (leaves detected by lo == hi)."""
    starts = np.ascontiguousarray(seg.starts)
    lo = np.ascontiguousarray(seg.lo)
    hi = np.ascontiguousarray(seg.hi)
    if seg.w is None:
        consumed = _compiled.solve_leaf_segments(
            seg.kind, seg.r, starts, lo, hi, out,
        )
    else:
        consumed = _compiled.solve_leaf_segments_w(
            seg.kind, seg.r, seg.w, starts, lo, hi, out,
        )
    return int(consumed)


def solve_prepost_arrays(
    seg: Segments,
    out: np.ndarray,
    *,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
    engine_backend: Optional[str] = None,
    workspace: Optional[Workspace] = None,
) -> None:
    """Run the level-synchronous recursion until every segment is solved.

    ``out`` must cover all cells referenced by the segments (it is indexed
    by absolute cell positions).  Values of empty segments stay 0.

    ``engine_backend`` selects the level kernel (``"fused"``,
    ``"naive"``, or ``"compiled"``; all bit-identical — see the module
    docstring; ``None`` means the process default per
    :func:`resolve_engine_backend`); ``workspace`` supplies a reusable
    :class:`Workspace` for the fused/compiled kernels (one is created
    per call when omitted; passing a long-lived one amortizes level
    buffers across many solves).

    When the current :mod:`repro.obs` tracer is enabled, every recursion
    level emits an ``engine.level`` span (attrs: level index, segment and
    op counts); disabled tracing costs one shared no-op context manager
    per level — O(log n) per run, not per access.
    """
    backend = resolve_engine_backend(engine_backend)
    fused = backend == "fused"
    if backend != "naive":
        if workspace is None:
            workspace = Workspace()
        workspace.prime(seg, backend=backend)
    tracer = get_tracer()
    traced = tracer.enabled
    level = 0
    while seg.n_segments:
        span = (
            tracer.span("engine.level", level=level,
                        n_segments=seg.n_segments, n_ops=seg.n_ops)
            if traced
            else NULL_SPAN
        )
        with span:
            if stats is not None:
                stats.record_level(seg, out.nbytes)
            if memory is not None:
                memory.observe("engine.segments", seg.nbytes)
            leaf_mask = seg.lo == seg.hi
            if leaf_mask.any():
                if backend == "compiled":
                    consumed = _solve_leaves_compiled(seg, out)
                else:
                    consumed = _solve_leaves(
                        seg, leaf_mask, out,
                        ws=workspace if fused else None, level=level,
                    )
                if stats is not None:
                    stats.work += consumed
            internal = ~leaf_mask
            done = not internal.any()
            if not done:
                if backend == "compiled":
                    seg = _partition_level_compiled(
                        seg, internal, workspace, level
                    )
                elif fused:
                    seg = _partition_level_fused(seg, internal, workspace,
                                                 level)
                else:
                    seg = _partition_level(seg, internal)
        if done:
            break
        level += 1
    if memory is not None:
        memory.observe("engine.segments", 0)


def iaf_distances(
    trace: TraceLike,
    *,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
    engine_backend: Optional[str] = None,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Backward distance vector of ``trace`` via the vectorized engine.

    0-based: ``out[i]`` counts the distinct addresses in
    ``trace[i : next(i)]`` (entries whose address never recurs hold the
    distinct count of the remaining suffix instead; they are ignored by
    curve construction, mirroring Lemma 4.1's accounting).
    """
    arr = as_trace(trace, dtype=dtype)
    n = arr.size
    engine_backend = resolve_engine_backend(engine_backend)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    tracer = get_tracer()
    traced = tracer.enabled
    dt = validate_dtype(dtype)
    with tracer.span("iaf.preprocess", n=n) if traced else NULL_SPAN:
        kind, t, r = prepost_sequence_arrays(arr, dtype=dt)
    if memory is not None:
        memory.allocate("engine.trace", int(arr.nbytes))
    values = np.zeros(n + 1, dtype=np.int64)  # cell 0 is the sentinel
    seg = Segments.single(kind, t, r, 0, n)
    span = (tracer.span("iaf.solve", n=n, backend=engine_backend)
            if traced else NULL_SPAN)
    with span:
        solve_prepost_arrays(seg, values, stats=stats, memory=memory,
                             engine_backend=engine_backend,
                             workspace=workspace)
    if memory is not None:
        memory.free("engine.trace", int(arr.nbytes))
    return values[1:]


def iaf_hit_rate_curve(
    trace: TraceLike,
    *,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
    engine_backend: Optional[str] = None,
    workspace: Optional[Workspace] = None,
) -> HitRateCurve:
    """Full pipeline: pre-process, distance computation, post-process."""
    arr = as_trace(trace, dtype=dtype)
    d = iaf_distances(arr, dtype=dtype, stats=stats, memory=memory,
                      engine_backend=engine_backend, workspace=workspace)
    tracer = get_tracer()
    span = (tracer.span("iaf.postprocess", n=arr.size)
            if tracer.enabled else NULL_SPAN)
    with span:
        _, nxt = prev_next_arrays(arr, engine_backend=engine_backend)
        return curve_from_backward_distances(d, nxt)


# ---------------------------------------------------------------------------
# Batched multi-trace solving (the serving-throughput form)
# ---------------------------------------------------------------------------


def batch_segments(
    traces: Sequence[TraceLike],
    *,
    dtype: Optional["np.typing.DTypeLike"] = None,
) -> Tuple[List[np.ndarray], Segments, np.ndarray, int]:
    """Seed one :class:`Segments` batch with one root segment per trace.

    Trace ``i`` owns the disjoint cell interval ``[bases[i], bases[i] +
    n_i]`` (its own sentinel plus ``n_i`` distance cells) in one shared
    output array, and its operations' ``t`` coordinates are rebased
    accordingly — so a single level loop carries all ``k`` traces and
    every vectorized pass is amortized across them.

    When ``dtype`` is omitted, the batch compiler narrows the op arrays
    to ``int32`` whenever it can *certify* the solve exact there: every
    ``t`` fits (``total_cells - 1``) and the batch's total merge effect
    — an upper bound on every cluster-sum any level can form — fits, so
    narrow accumulation cannot wrap.  Half the per-pass memory traffic,
    bit-identical distances.  An explicit ``dtype`` is always honored.

    Returns ``(validated traces, segments, bases, total_cells)``.
    """
    auto = dtype is None
    dt = validate_dtype(DEFAULT_DTYPE if auto else dtype)
    arrs = [as_trace(t, dtype=dt) for t in traces]
    sizes = np.array([a.size for a in arrs], dtype=np.int64)
    bases = np.zeros(len(arrs) + 1, dtype=np.int64)
    if len(arrs):
        np.cumsum(sizes + 1, out=bases[1:])
    total_cells = int(bases[-1])
    if total_cells and total_cells - 1 > np.iinfo(dt).max:
        raise CapacityError(
            f"batch of {len(arrs)} traces spans {total_cells} cells, "
            f"which does not fit in {dt}; use dtype=int64"
        )
    kinds: List[np.ndarray] = []
    ts: List[np.ndarray] = []
    rs: List[np.ndarray] = []
    for arr, base in zip(arrs, bases[:-1].tolist()):
        kind, t, r = prepost_sequence_arrays(arr, dtype=dt)
        if base:
            t = t + dt.type(base)
        kinds.append(kind)
        ts.append(t)
        rs.append(r)
    op_counts = np.array([k.size for k in kinds], dtype=np.int64)
    starts = np.zeros(len(arrs) + 1, dtype=np.int64)
    if len(arrs):
        np.cumsum(op_counts, out=starts[1:])
    t_all = np.concatenate(ts) if ts else np.zeros(0, dtype=dt)
    r_all = np.concatenate(rs) if rs else np.zeros(0, dtype=dt)
    if auto and r_all.size:
        i32 = np.iinfo(np.int32)
        bound = int(r_all.sum(dtype=np.int64)) + r_all.size
        if total_cells - 1 <= i32.max and bound <= i32.max:
            t_all = t_all.astype(np.int32)
            r_all = r_all.astype(np.int32)
    seg = Segments(
        kind=np.concatenate(kinds) if kinds else np.zeros(0, dtype=np.uint8),
        t=t_all,
        r=r_all,
        starts=starts,
        lo=bases[:-1].copy(),
        hi=bases[:-1] + sizes,
    )
    return arrs, seg, bases, total_cells


def iaf_distances_batch(
    traces: Sequence[TraceLike],
    *,
    dtype: Optional["np.typing.DTypeLike"] = None,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
    engine_backend: Optional[str] = None,
    workspace: Optional[Workspace] = None,
) -> List[np.ndarray]:
    """Backward distance vectors of ``k`` independent traces in one solve.

    Identical output to ``[iaf_distances(t) for t in traces]`` — each
    trace's segments never interact with another's (the cluster-sums are
    segmented and the cell intervals disjoint) — but all traces share
    every level's vectorized passes, so the per-level numpy dispatch cost
    is paid once per *batch* instead of once per trace.
    """
    engine_backend = resolve_engine_backend(engine_backend)
    arrs, seg, bases, total_cells = batch_segments(traces, dtype=dtype)
    if not arrs:
        return []
    tracer = get_tracer()
    values = np.zeros(total_cells, dtype=np.int64)
    if memory is not None:
        memory.allocate("engine.trace",
                        int(sum(a.nbytes for a in arrs)))
    span = (
        tracer.span("iaf.solve_batch", k=len(arrs),
                    n=int(sum(a.size for a in arrs)),
                    backend=engine_backend)
        if tracer.enabled
        else NULL_SPAN
    )
    with span:
        solve_prepost_arrays(seg, values, stats=stats, memory=memory,
                             engine_backend=engine_backend,
                             workspace=workspace)
    if memory is not None:
        memory.free("engine.trace", int(sum(a.nbytes for a in arrs)))
    return [
        values[base + 1 : base + 1 + arr.size]
        for arr, base in zip(arrs, bases[:-1].tolist())
    ]


def iaf_hit_rate_curves_batch(
    traces: Sequence[TraceLike],
    *,
    dtype: Optional["np.typing.DTypeLike"] = None,
    stats: Optional[EngineStats] = None,
    engine_backend: Optional[str] = None,
    workspace: Optional[Workspace] = None,
) -> List[HitRateCurve]:
    """Exact LRU hit-rate curves of ``k`` traces in one batched solve.

    The serving primitive: many concurrent curve requests (the SHARDS-
    style workload of many small/medium traces) ride one level loop.
    Curves are identical to ``[iaf_hit_rate_curve(t) for t in traces]``.
    """
    arrs = [as_trace(t, dtype=DEFAULT_DTYPE if dtype is None else dtype)
            for t in traces]
    distances = iaf_distances_batch(arrs, dtype=dtype, stats=stats,
                                    engine_backend=engine_backend,
                                    workspace=workspace)
    curves: List[HitRateCurve] = []
    for arr, d in zip(arrs, distances):
        if arr.size == 0:
            curves.append(HitRateCurve(np.zeros(0, dtype=np.int64), 0))
            continue
        _, nxt = prev_next_arrays(arr, engine_backend=engine_backend)
        curves.append(curve_from_backward_distances(d, nxt))
    return curves
