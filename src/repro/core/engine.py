"""The production INCREMENT-AND-FREEZE engine (Sections 4, 6, 8).

This is the paper's algorithm realized the way the Section-6 analysis
suggests: **level-synchronously and data-parallel**.  At every recursion
depth, *all* subproblems live side by side in one set of flat numpy
arrays (``kind``/``t``/``r`` per operation, plus per-segment interval
bounds), and one partition step maps every parent segment to its two
children at once:

1. *Projection* is an elementwise map (the Prefix/Postfix projection
   rules are branch-free ``where`` expressions).
2. *Shrinking* — merging full-interval operations into their predecessors
   — is a segmented cluster-sum (Lemma 6.1): a cumulative sum of merge
   effects, run-length boundaries from the "kept" mask, one gather.

Each level is O(total ops) numpy work; Lemma 4.2 bounds the total ops per
level by O(n), and there are O(log n) levels — so this single
implementation is simultaneously the fast serial algorithm (its memory
traffic is sequential streams, the point of the paper) and a faithful
realization of PARALLEL-INCREMENT-AND-FREEZE's O(log² n)-span structure
(every numpy pass is a map or a scan).

Size-1 segments ("leaves") are solved in closed form: a leaf's cell value
is the summed effect of its operations up to and including the leading
``+1`` of the first Postfix, which freezes the cell.

The module exposes two layers:

* :func:`solve_prepost_arrays` — run the level loop on an arbitrary
  initial segment list (used by the external-memory and parallel
  variants, whose recursions bottom out in these in-memory segments).
* :func:`iaf_distances` / :func:`iaf_hit_rate_curve` — the whole pipeline
  for a trace: pre-process, solve, post-process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .._typing import DEFAULT_DTYPE, TraceLike, as_trace, validate_dtype
from ..metrics.memory import MemoryModel
from ..obs import NULL_SPAN, get_tracer
from ..pram.scheduler import Cost
from .hitrate import HitRateCurve, curve_from_backward_distances
from .ops import POSTFIX, PREFIX, prepost_sequence_arrays
from .prevnext import prev_next_arrays


@dataclass
class EngineStats:
    """Instrumentation of one engine run.

    ``work`` counts operation touches across all levels; ``span_basic``
    is the Section-4 span (levels run their segments in parallel, each
    segment serially — O(n) total), ``span_parallel`` the Section-6 span
    (each level is scans and maps, O(log n) each — O(log² n) total).
    ``peak_level_ops`` drives the memory story: the engine's working set
    is proportional to it.
    """

    levels: int = 0
    work: float = 0.0
    span_basic: float = 0.0
    span_parallel: float = 0.0
    peak_level_ops: int = 0
    peak_bytes: int = 0
    ops_per_level: List[int] = field(default_factory=list)
    #: When True, per-level segment op counts are kept (the level-barrier
    #: task structure consumed by :mod:`repro.pram.simulator`).
    record_segments: bool = False
    segment_sizes_per_level: List[np.ndarray] = field(default_factory=list)

    def basic_cost(self) -> Cost:
        """Work/span of basic INCREMENT-AND-FREEZE (Theorem 4.3)."""
        return Cost(self.work, min(self.span_basic, self.work))

    def parallel_cost(self) -> Cost:
        """Work/span of PARALLEL-INCREMENT-AND-FREEZE (Theorem 6.2)."""
        return Cost(self.work, min(self.span_parallel, self.work))


@dataclass
class Segments:
    """A batch of subproblems at one recursion depth.

    ``kind``/``t``/``r`` are the concatenated operation arrays; segment
    ``s`` owns ops ``[starts[s], starts[s+1])`` and the cell interval
    ``[lo[s], hi[s]]``.

    ``w`` generalizes the encoding to **variable-size objects** (the
    Section 9.1 remark): it is the magnitude of each op's "+1 part"
    (``Increment(a, t, w)`` for a Prefix, ``Increment(t, b, w)`` for a
    Postfix).  ``w = None`` means the classic unit-weight algorithm and
    keeps the hot path free of the extra array.
    """

    kind: np.ndarray
    t: np.ndarray
    r: np.ndarray
    starts: np.ndarray  # int64, length n_segments + 1
    lo: np.ndarray
    hi: np.ndarray
    w: Optional[np.ndarray] = None

    @property
    def n_segments(self) -> int:
        return self.lo.size

    @property
    def n_ops(self) -> int:
        return int(self.starts[-1])

    @property
    def nbytes(self) -> int:
        return int(
            self.kind.nbytes + self.t.nbytes + self.r.nbytes
            + self.starts.nbytes + self.lo.nbytes + self.hi.nbytes
            + (self.w.nbytes if self.w is not None else 0)
        )

    def counts(self) -> np.ndarray:
        return np.diff(self.starts)

    @staticmethod
    def single(
        kind: np.ndarray, t: np.ndarray, r: np.ndarray, lo: int, hi: int,
        w: Optional[np.ndarray] = None,
    ) -> "Segments":
        """Wrap one op sequence on one interval as a batch of size 1."""
        return Segments(
            kind=np.asarray(kind, dtype=np.uint8),
            t=np.asarray(t),
            r=np.asarray(r),
            starts=np.array([0, len(kind)], dtype=np.int64),
            lo=np.array([lo], dtype=np.int64),
            hi=np.array([hi], dtype=np.int64),
            w=None if w is None else np.asarray(w),
        )


def _solve_leaves(seg: Segments, leaf_mask: np.ndarray, out: np.ndarray) -> int:
    """Evaluate all size-1 segments in one vectorized pass.

    Writes each leaf's value at ``out[lo]``; returns the number of ops
    consumed (for work accounting).  Empty leaves keep value 0 (only the
    sentinel cell can be empty; its value is never read).
    """
    counts = seg.counts()[leaf_mask]
    starts = seg.starts[:-1][leaf_mask]
    lo = seg.lo[leaf_mask]
    nonempty = counts > 0
    if not nonempty.any():
        return 0
    counts, starts, lo = counts[nonempty], starts[nonempty], lo[nonempty]
    # Compact the leaf ops into their own contiguous arrays.
    take = _gather_indices(starts, counts)
    kind = seg.kind[take]
    r = seg.r[take].astype(np.int64, copy=False)
    m = kind.size
    new_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
    )
    if seg.w is None:
        effects = 1 + r
        w_at = np.ones(m, dtype=np.int64)
    else:
        w = seg.w[take].astype(np.int64, copy=False)
        effects = w + r
        w_at = w
    c0 = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(effects)])
    pf_idx = np.where(kind == POSTFIX, np.arange(m, dtype=np.int64), m)
    first_pf = np.minimum.reduceat(pf_idx, new_starts[:-1])
    ends = new_starts[1:]
    has_pf = first_pf < ends
    # c0 has m+1 entries, and first_pf <= m always, so both branches index
    # safely even though np.where evaluates them eagerly; the w_at gather
    # clamps first_pf for the no-postfix rows whose value is discarded.
    value = np.where(
        has_pf,
        c0[first_pf] - c0[new_starts[:-1]]
        + w_at[np.minimum(first_pf, m - 1)],
        c0[ends] - c0[new_starts[:-1]],
    )
    out[lo] = value
    return m


def _gather_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices selecting ``counts[s]`` items from each ``starts[s]``.

    Standard prefix-sum gather: equivalent to
    ``concatenate([arange(st, st+c) for st, c in zip(starts, counts)])``
    without the Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
    )
    idx = np.arange(total, dtype=np.int64)
    seg_of = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    return starts[seg_of] + (idx - out_starts[:-1][seg_of])


def _shrink_child(
    kind_c: np.ndarray,
    t_c: np.ndarray,
    r_c: np.ndarray,
    child_hi_op: np.ndarray,
    child_hi_seg: np.ndarray,
    seg_of_op: np.ndarray,
    starts: np.ndarray,
    w_c: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           Optional[np.ndarray]]:
    """Segmented shrink: merge full-interval ops into their predecessors.

    Inputs are one child batch (already projected): per-op arrays, the
    child's upper bound per op and per segment, the op→segment map, and
    the segment offsets.  Returns the shrunk ``(kind, t, r, counts, w)``.

    This is the vectorized cluster-sum of Lemma 6.1: ``mergeable`` ops are
    the zero-flagged pairs carrying effect ``w + r`` (``1 + r`` in the
    unit-weight case); each kept op absorbs the run of mergeable effects
    that follows it (up to the next kept op or its segment's end); a
    leading run becomes a head op unless its net effect is zero.
    """
    m = kind_c.size
    n_segs = child_hi_seg.size
    mergeable = (kind_c == PREFIX) & (t_c == child_hi_op)
    if w_c is None:
        eff = np.where(mergeable, 1 + r_c.astype(np.int64), 0)
    else:
        eff = np.where(
            mergeable, w_c.astype(np.int64) + r_c.astype(np.int64), 0
        )
    c0 = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(eff)])
    kept = ~mergeable
    kept_idx = np.flatnonzero(kept)
    k = kept_idx.size

    kept_counts = (
        np.bincount(seg_of_op[kept_idx], minlength=n_segs)
        if k
        else np.zeros(n_segs, dtype=np.int64)
    )
    kcum = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(kept_counts)]
    )

    # Run of mergeable ops after each kept op, clipped to its segment.
    if k:
        next_kept = np.empty(k, dtype=np.int64)
        next_kept[:-1] = kept_idx[1:]
        next_kept[-1] = m
        seg_of_kept = seg_of_op[kept_idx]
        boundary = np.minimum(next_kept, starts[seg_of_kept + 1])
        run = c0[boundary] - c0[kept_idx + 1]
        r_kept = r_c[kept_idx].astype(np.int64) + run
    else:
        seg_of_kept = np.zeros(0, dtype=np.int64)
        r_kept = np.zeros(0, dtype=np.int64)

    # Leading run per segment -> head op when its net effect is nonzero.
    first_kept = starts[1:].astype(np.int64).copy()
    has_kept = kept_counts > 0
    if k:
        first_kept[has_kept] = kept_idx[kcum[:-1][has_kept]]
    head_sum = c0[first_kept] - c0[starts[:-1]]
    emit_head = head_sum != 0

    out_counts = kept_counts + emit_head
    out_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(out_counts)]
    )
    total = int(out_starts[-1])
    kind_out = np.empty(total, dtype=np.uint8)
    t_out = np.empty(total, dtype=t_c.dtype)
    r_out = np.empty(total, dtype=r_c.dtype)

    w_out = None if w_c is None else np.empty(total, dtype=w_c.dtype)

    head_pos = out_starts[:-1][emit_head]
    kind_out[head_pos] = PREFIX
    t_out[head_pos] = child_hi_seg[emit_head]
    if w_c is None:
        # Unit-weight encoding: a full-interval Prefix(hi, r) has effect
        # 1 + r, so a head of net effect e is written as r = e - 1.
        r_out[head_pos] = (head_sum[emit_head] - 1).astype(r_c.dtype)
    else:
        # Weighted encoding: heads carry w = 0 and the whole effect in r.
        r_out[head_pos] = head_sum[emit_head].astype(r_c.dtype)
        w_out[head_pos] = 0

    if k:
        rank = np.arange(k, dtype=np.int64) - kcum[:-1][seg_of_kept]
        pos = out_starts[:-1][seg_of_kept] + emit_head[seg_of_kept] + rank
        kind_out[pos] = kind_c[kept_idx]
        t_out[pos] = t_c[kept_idx]
        r_out[pos] = r_kept.astype(r_c.dtype)
        if w_c is not None:
            w_out[pos] = w_c[kept_idx]

    return kind_out, t_out, r_out, out_counts, w_out


def _partition_level(seg: Segments, internal_mask: np.ndarray) -> Segments:
    """One level of the recursion: split every internal segment in half."""
    all_internal = bool(internal_mask.all())
    counts = seg.counts() if all_internal else seg.counts()[internal_mask]
    lo = seg.lo if all_internal else seg.lo[internal_mask]
    hi = seg.hi if all_internal else seg.hi[internal_mask]
    mid = (lo + hi) // 2

    if all_internal:
        # Common case away from the bottom of the recursion: every segment
        # splits, so the op arrays can be used in place (no gather copy).
        kind, t, r, w = seg.kind, seg.t, seg.r, seg.w
        new_starts = seg.starts
    else:
        starts = seg.starts[:-1][internal_mask]
        take = _gather_indices(starts, counts)
        kind = seg.kind[take]
        t = seg.t[take]
        r = seg.r[take]
        w = None if seg.w is None else seg.w[take]
        new_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
    seg_of_op = np.repeat(np.arange(lo.size, dtype=np.int64), counts)

    mid_op = mid[seg_of_op].astype(t.dtype, copy=False)
    hi_op = hi[seg_of_op].astype(t.dtype, copy=False)
    is_postfix = kind == POSTFIX

    # Left child [lo, mid]: ops with t <= mid are unchanged; others become
    # full-interval Prefixes.  A projected-out Prefix keeps its w+r effect
    # (its "+w part" covered the whole child); a projected-out Postfix
    # contributes only its trailing r.  In the unit-weight encoding the
    # full-interval form Prefix(mid, r') has effect 1 + r', hence the -1s;
    # in the weighted encoding full ops carry w = 0 and the effect in r.
    inside_l = t <= mid_op
    kind_l = np.where(inside_l, kind, PREFIX).astype(np.uint8)
    t_l = np.where(inside_l, t, mid_op)
    if w is None:
        r_l = np.where(inside_l, r, np.where(is_postfix, r - 1, r))
        w_l = None
    else:
        r_l = np.where(inside_l, r, np.where(is_postfix, r, w + r))
        w_l = np.where(inside_l, w, 0)
    kl, tl, rl, counts_l, wl = _shrink_child(
        kind_l, t_l, r_l, mid_op, mid.astype(t.dtype), seg_of_op,
        new_starts, w_l,
    )

    # Right child [mid+1, hi]: mirrored rules.
    inside_r = t > mid_op
    kind_r = np.where(inside_r, kind, PREFIX).astype(np.uint8)
    t_r = np.where(inside_r, t, hi_op)
    if w is None:
        r_r = np.where(inside_r, r, np.where(is_postfix, r, r - 1))
        w_r = None
    else:
        r_r = np.where(inside_r, r, np.where(is_postfix, w + r, r))
        w_r = np.where(inside_r, w, 0)
    kr, tr, rr, counts_r, wr = _shrink_child(
        kind_r, t_r, r_r, hi_op, hi.astype(t.dtype), seg_of_op,
        new_starts, w_r,
    )

    all_counts = np.concatenate([counts_l, counts_r])
    return Segments(
        kind=np.concatenate([kl, kr]),
        t=np.concatenate([tl, tr]),
        r=np.concatenate([rl, rr]),
        starts=np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(all_counts)]
        ),
        lo=np.concatenate([lo, mid + 1]),
        hi=np.concatenate([mid, hi]),
        w=None if wl is None else np.concatenate([wl, wr]),
    )


def solve_prepost_arrays(
    seg: Segments,
    out: np.ndarray,
    *,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
) -> None:
    """Run the level-synchronous recursion until every segment is solved.

    ``out`` must cover all cells referenced by the segments (it is indexed
    by absolute cell positions).  Values of empty segments stay 0.

    When the current :mod:`repro.obs` tracer is enabled, every recursion
    level emits an ``engine.level`` span (attrs: level index, segment and
    op counts); disabled tracing costs one shared no-op context manager
    per level — O(log n) per run, not per access.
    """
    tracer = get_tracer()
    traced = tracer.enabled
    level = 0
    while seg.n_segments:
        span = (
            tracer.span("engine.level", level=level,
                        n_segments=seg.n_segments, n_ops=seg.n_ops)
            if traced
            else NULL_SPAN
        )
        with span:
            if stats is not None:
                m = seg.n_ops
                stats.levels += 1
                stats.ops_per_level.append(m)
                stats.work += m
                counts = seg.counts()
                stats.span_basic += float(counts.max()) if counts.size else 0.0
                stats.span_parallel += math.log2(max(m, 2))
                stats.peak_level_ops = max(stats.peak_level_ops, m)
                stats.peak_bytes = max(stats.peak_bytes,
                                       seg.nbytes + out.nbytes)
                if stats.record_segments:
                    stats.segment_sizes_per_level.append(counts.copy())
            if memory is not None:
                memory.observe("engine.segments", seg.nbytes)
            leaf_mask = seg.lo == seg.hi
            if leaf_mask.any():
                consumed = _solve_leaves(seg, leaf_mask, out)
                if stats is not None:
                    stats.work += consumed
            internal = ~leaf_mask
            done = not internal.any()
            if not done:
                seg = _partition_level(seg, internal)
        if done:
            break
        level += 1
    if memory is not None:
        memory.observe("engine.segments", 0)


def iaf_distances(
    trace: TraceLike,
    *,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
) -> np.ndarray:
    """Backward distance vector of ``trace`` via the vectorized engine.

    0-based: ``out[i]`` counts the distinct addresses in
    ``trace[i : next(i)]`` (entries whose address never recurs hold the
    distinct count of the remaining suffix instead; they are ignored by
    curve construction, mirroring Lemma 4.1's accounting).
    """
    arr = as_trace(trace, dtype=dtype)
    n = arr.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    tracer = get_tracer()
    traced = tracer.enabled
    dt = validate_dtype(dtype)
    with tracer.span("iaf.preprocess", n=n) if traced else NULL_SPAN:
        kind, t, r = prepost_sequence_arrays(arr, dtype=dt)
    if memory is not None:
        memory.allocate("engine.trace", int(arr.nbytes))
    values = np.zeros(n + 1, dtype=np.int64)  # cell 0 is the sentinel
    seg = Segments.single(kind, t, r, 0, n)
    with tracer.span("iaf.solve", n=n) if traced else NULL_SPAN:
        solve_prepost_arrays(seg, values, stats=stats, memory=memory)
    if memory is not None:
        memory.free("engine.trace", int(arr.nbytes))
    return values[1:]


def iaf_hit_rate_curve(
    trace: TraceLike,
    *,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
    stats: Optional[EngineStats] = None,
    memory: Optional[MemoryModel] = None,
) -> HitRateCurve:
    """Full pipeline: pre-process, distance computation, post-process."""
    arr = as_trace(trace, dtype=dtype)
    d = iaf_distances(arr, dtype=dtype, stats=stats, memory=memory)
    tracer = get_tracer()
    span = (tracer.span("iaf.postprocess", n=arr.size)
            if tracer.enabled else NULL_SPAN)
    with span:
        _, nxt = prev_next_arrays(arr)
        return curve_from_backward_distances(d, nxt)
