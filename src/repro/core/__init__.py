"""Core contribution: INCREMENT-AND-FREEZE and its variants."""

from .api import ALGORITHMS, hit_rate_curve, hit_rate_curves_batch, \
    solve, solve_batch, stack_distances
from .config import BATCHABLE_ALGORITHMS, ENGINE_ALGORITHMS, SolveConfig, \
    SolveResult
from .bounded import (
    BoundedResult,
    bounded_iaf,
    forward_distances_via_reversal,
    parallel_bounded_iaf,
    recent_distinct_suffix,
)
from .chunked import ChunkedIAF, ChunkedResult, chunked_iaf
from .engine import (
    ENGINE_BACKENDS,
    EngineStats,
    Segments,
    Workspace,
    batch_segments,
    iaf_distances,
    iaf_distances_batch,
    iaf_hit_rate_curve,
    iaf_hit_rate_curves_batch,
    solve_prepost_arrays,
)
from .external import (
    ExternalRunReport,
    external_iaf_distances,
    external_io_bound_blocks,
)
from .hitrate import (
    HitRateCurve,
    curve_from_backward_distances,
    curve_from_forward_distances,
    forward_from_backward,
    load_curve,
    merge_curves,
    save_curve,
)
from .parallel import (
    ParallelCostReport,
    measure_parallel_cost,
    parallel_iaf_distances,
    parallel_iaf_distances_batch,
    parallel_iaf_hit_rate_curve,
    parallel_iaf_hit_rate_curves_batch,
    parallel_weighted_backward_distances,
    process_parallel_iaf_distances,
)
from .partition import (
    partition_prepost,
    partition_prepost_simple,
    prepost_distances,
    solve_prepost,
)
from .prevnext import (
    distinct_count,
    first_occurrence_mask,
    prev_next_arrays,
    prev_next_arrays_python,
)
from .reference import reference_distances, reference_hit_curve_counts
from .sampling import (
    ApproximateCurve,
    estimate_error,
    rescale_curve,
    sample_mask,
    sampled_hit_rate_curve,
    splitmix64,
)
from .streaming import OnlineCurveAnalyzer, analyze_stream
from .weighted import (
    WeightedCurve,
    simulate_weighted_lru,
    weighted_hit_rate_curve,
    weighted_stack_distances,
)

__all__ = [
    "ALGORITHMS",
    "BATCHABLE_ALGORITHMS",
    "ENGINE_ALGORITHMS",
    "SolveConfig",
    "SolveResult",
    "hit_rate_curve",
    "hit_rate_curves_batch",
    "solve",
    "solve_batch",
    "stack_distances",
    "BoundedResult",
    "bounded_iaf",
    "forward_distances_via_reversal",
    "parallel_bounded_iaf",
    "recent_distinct_suffix",
    "ChunkedIAF",
    "ChunkedResult",
    "chunked_iaf",
    "ENGINE_BACKENDS",
    "EngineStats",
    "Segments",
    "Workspace",
    "batch_segments",
    "iaf_distances",
    "iaf_distances_batch",
    "iaf_hit_rate_curve",
    "iaf_hit_rate_curves_batch",
    "solve_prepost_arrays",
    "ExternalRunReport",
    "external_iaf_distances",
    "external_io_bound_blocks",
    "HitRateCurve",
    "curve_from_backward_distances",
    "curve_from_forward_distances",
    "forward_from_backward",
    "load_curve",
    "merge_curves",
    "save_curve",
    "ParallelCostReport",
    "measure_parallel_cost",
    "parallel_iaf_distances",
    "parallel_iaf_distances_batch",
    "parallel_iaf_hit_rate_curve",
    "parallel_iaf_hit_rate_curves_batch",
    "parallel_weighted_backward_distances",
    "process_parallel_iaf_distances",
    "partition_prepost",
    "partition_prepost_simple",
    "prepost_distances",
    "solve_prepost",
    "distinct_count",
    "first_occurrence_mask",
    "prev_next_arrays",
    "prev_next_arrays_python",
    "reference_distances",
    "reference_hit_curve_counts",
    "ApproximateCurve",
    "estimate_error",
    "rescale_curve",
    "sample_mask",
    "sampled_hit_rate_curve",
    "splitmix64",
    "OnlineCurveAnalyzer",
    "analyze_stream",
    "WeightedCurve",
    "simulate_weighted_lru",
    "weighted_hit_rate_curve",
    "weighted_stack_distances",
]
