"""Bélády's MIN / offline-OPT cache simulation (related-work extension).

Section 2 of the paper surveys hit-rate curves for the *optimal* offline
policy: Bélády's MIN (1966) computes the optimal hit count online, and
Mattson et al. showed Furthest-in-the-Future is offline optimal.  This
module implements Furthest-in-the-Future exactly (with the standard
next-use precomputation), plus an OPT hit-count sweep used to check the
invariant that OPT dominates LRU at every cache size.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from .._typing import TraceLike, as_trace
from ..errors import CapacityError
from .lru import CacheResult


def _next_use(arr: np.ndarray) -> np.ndarray:
    """``next_use[i]`` = next position accessing ``arr[i]`` (n if none)."""
    n = arr.size
    out = np.full(n, n, dtype=np.int64)
    last: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        addr = int(arr[i])
        out[i] = last.get(addr, n)
        last[addr] = i
    return out


def simulate_opt(trace: TraceLike, capacity: int) -> CacheResult:
    """Furthest-in-the-Future on ``trace`` with a size-``capacity`` cache.

    Lazy max-heap of (next-use, address): stale entries are skipped at pop
    time by checking against the live next-use table, giving O(n log n).
    """
    if capacity < 1:
        raise CapacityError(f"cache capacity must be >= 1, got {capacity}")
    arr = as_trace(trace)
    nxt = _next_use(arr)
    n = arr.size
    resident: dict[int, int] = {}  # address -> its current next use
    heap: list[tuple[int, int]] = []  # (-next_use, address)
    hits = 0
    for i in range(n):
        addr = int(arr[i])
        future = int(nxt[i])
        if addr in resident:
            hits += 1
        elif len(resident) >= capacity:
            # Evict the resident address used furthest in the future.
            while True:
                neg_use, victim = heapq.heappop(heap)
                if resident.get(victim) == -neg_use:
                    break
            del resident[victim]
        resident[addr] = future
        heapq.heappush(heap, (-future, addr))
    return CacheResult(capacity=capacity, hits=hits, misses=n - hits)


def opt_hits_per_size(trace: TraceLike, max_size: Optional[int] = None) -> np.ndarray:
    """``out[k-1]`` = OPT hits at cache size k, for k = 1..max_size."""
    arr = as_trace(trace)
    u = int(np.unique(arr).size) if arr.size else 0
    limit = u if max_size is None else min(max_size, max(u, 1))
    out = np.zeros(max(limit, 0), dtype=np.int64)
    for k in range(1, limit + 1):
        out[k - 1] = simulate_opt(arr, k).hits
    return out
