"""Sweep helpers: empirical hit-rate curves from direct simulation.

These are the *slow but unarguable* counterparts of the analytic curves
IAF produces; integration tests assert exact equality between the two.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from .._typing import TraceLike, as_trace
from .clock import simulate_clock
from .fifo import simulate_fifo
from .lfu import simulate_lfu
from .lru import CacheResult, simulate_lru
from .opt import simulate_opt

#: Registry of policy name -> single-size simulator.
POLICIES: Dict[str, Callable[..., CacheResult]] = {
    "lru": simulate_lru,
    "opt": simulate_opt,
    "fifo": simulate_fifo,
    "clock": simulate_clock,
    "lfu": simulate_lfu,
}


def empirical_hit_rate_curve(
    trace: TraceLike,
    sizes: Sequence[int],
    policy: str = "lru",
) -> np.ndarray:
    """Hit rate at each requested cache size by direct simulation.

    O(n · len(sizes)) — intended for tests and small examples, not for
    production (which is the entire point of the paper).
    """
    try:
        simulate = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; known: {sorted(POLICIES)}"
        ) from None
    arr = as_trace(trace)
    return np.array(
        [simulate(arr, int(k)).hit_rate for k in sizes], dtype=np.float64
    )


def policy_gap_curve(
    trace: TraceLike, sizes: Sequence[int], policy: str
) -> np.ndarray:
    """Per-size hit-rate deficit of ``policy`` relative to OPT.

    Answers the introduction's "what-if" question about a production
    policy: how much better could the optimal policy have done at each
    size?  Values are in [0, 1] by Bélády optimality.
    """
    opt = empirical_hit_rate_curve(trace, sizes, "opt")
    other = empirical_hit_rate_curve(trace, sizes, policy)
    return opt - other
