"""Direct cache simulators: LRU (ground truth), OPT/Bélády, FIFO, CLOCK, LFU."""

from .clock import ClockCache, simulate_clock
from .fifo import FIFOCache, simulate_fifo
from .lfu import LFUCache, simulate_lfu
from .lru import CacheResult, LRUCache, lru_hits_per_size, simulate_lru
from .opt import opt_hits_per_size, simulate_opt
from .simulate import POLICIES, empirical_hit_rate_curve, policy_gap_curve

__all__ = [
    "ClockCache",
    "simulate_clock",
    "LFUCache",
    "simulate_lfu",
    "FIFOCache",
    "simulate_fifo",
    "CacheResult",
    "LRUCache",
    "lru_hits_per_size",
    "simulate_lru",
    "opt_hits_per_size",
    "simulate_opt",
    "POLICIES",
    "empirical_hit_rate_curve",
    "policy_gap_curve",
]
