"""CLOCK (second-chance): the canonical low-overhead LRU approximation.

The paper's introduction asks "are the ways in which the cache
approximates LRU hurting its performance in comparison to a true LRU
cache?"  CLOCK is the approximation virtually every OS page cache makes:
a circular buffer with one reference bit per slot; the hand clears bits
until it finds an unreferenced victim.  Comparing its empirical hit rate
against the exact LRU curve (IAF's output) answers that question
quantitatively — see ``examples/`` and the policy-gap helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .._typing import TraceLike, as_trace
from ..errors import CapacityError
from .lru import CacheResult


class ClockCache:
    """Fixed-size CLOCK cache over integer addresses."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: List[Optional[int]] = [None] * capacity
        self._referenced: List[bool] = [False] * capacity
        self._where: Dict[int, int] = {}
        self._hand = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, address: int) -> bool:
        return address in self._where

    def access(self, address: int) -> bool:
        """Access ``address``: set its reference bit on hit, else admit."""
        slot = self._where.get(address)
        if slot is not None:
            self._referenced[slot] = True
            self.hits += 1
            return True
        self.misses += 1
        victim = self._advance_to_victim()
        old = self._slots[victim]
        if old is not None:
            del self._where[old]
        self._slots[victim] = address
        self._referenced[victim] = True
        self._where[address] = victim
        return False

    def _advance_to_victim(self) -> int:
        """Sweep the hand, giving second chances, until a victim appears."""
        while True:
            slot = self._hand
            self._hand = (self._hand + 1) % self.capacity
            if self._slots[slot] is None or not self._referenced[slot]:
                return slot
            self._referenced[slot] = False


def simulate_clock(trace: TraceLike, capacity: int) -> CacheResult:
    """Run a CLOCK cache of ``capacity`` over ``trace``."""
    arr = as_trace(trace)
    cache = ClockCache(capacity)
    for addr in arr.tolist():
        cache.access(addr)
    return CacheResult(capacity=capacity, hits=cache.hits, misses=cache.misses)
