"""Exact LRU cache simulation — the independent ground truth.

Everything IAF claims reduces to: "an LRU cache of size k would have hit
on exactly these accesses."  This module simulates that cache directly
(an ordered dict as the recency list), so the test suite can check
``H_T(k)`` from every algorithm against reality for every k, with no
shared code between the oracle and the systems under test.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._typing import TraceLike, as_trace
from ..errors import CapacityError


@dataclass
class CacheResult:
    """Outcome of simulating one cache over one trace."""

    capacity: int
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        """Total accesses simulated."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 for an empty trace)."""
        return 0.0 if self.accesses == 0 else self.hits / self.accesses


class LRUCache:
    """A size-``capacity`` LRU cache over integer addresses.

    ``access`` returns True on a hit.  Eviction removes the
    least-recently-used resident address.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, address: int) -> bool:
        return address in self._resident

    def access(self, address: int) -> bool:
        """Access ``address``; return True on hit, False on miss."""
        resident = self._resident
        if address in resident:
            resident.move_to_end(address)
            self.hits += 1
            return True
        self.misses += 1
        if len(resident) >= self.capacity:
            resident.popitem(last=False)
        resident[address] = None
        return False

    def contents_mru_first(self) -> list:
        """Resident addresses from most- to least-recently used."""
        return list(reversed(self._resident.keys()))


def simulate_lru(trace: TraceLike, capacity: int) -> CacheResult:
    """Run an LRU cache of ``capacity`` over ``trace``."""
    arr = as_trace(trace)
    cache = LRUCache(capacity)
    for addr in arr.tolist():
        cache.access(addr)
    return CacheResult(capacity=capacity, hits=cache.hits, misses=cache.misses)


def lru_hits_per_size(trace: TraceLike, max_size: Optional[int] = None) -> np.ndarray:
    """``out[k-1]`` = hits of a size-k LRU cache, for k = 1..max_size.

    Uses the Mattson inclusion property (a single stack pass yields every
    size at once) — but implemented as the *definitionally* correct
    repeated simulation when the trace is tiny, so tests can choose the
    slow-but-unarguable path via this helper with ``max_size`` small.
    """
    arr = as_trace(trace)
    u = int(np.unique(arr).size) if arr.size else 0
    limit = u if max_size is None else min(max_size, max(u, 1))
    out = np.zeros(max(limit, 0), dtype=np.int64)
    for k in range(1, limit + 1):
        out[k - 1] = simulate_lru(arr, k).hits
    return out
