"""LFU: frequency-based eviction, the workload-specific optimization case.

The introduction's fourth what-if question — "to what degree are the
optimizations that the cache makes beyond LRU leading to better
performance?" — needs a policy that can *beat* LRU on skewed traffic.
In-cache LFU (evict the resident object with the fewest accesses since
admission, ties broken by recency) is the classic such policy: it wins
on stable Zipfian popularity and loses badly when popularity shifts.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Tuple

from .._typing import TraceLike, as_trace
from ..errors import CapacityError
from .lru import CacheResult


class LFUCache:
    """In-cache LFU with LRU tie-breaking (lazy-heap implementation)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._freq: Dict[int, int] = {}
        self._stamp: Dict[int, int] = {}
        self._heap: list[Tuple[int, int, int]] = []  # (freq, stamp, addr)
        self._ticker = count()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, address: int) -> bool:
        return address in self._freq

    def _push(self, address: int) -> None:
        stamp = next(self._ticker)
        self._stamp[address] = stamp
        heapq.heappush(
            self._heap, (self._freq[address], stamp, address)
        )

    def access(self, address: int) -> bool:
        if address in self._freq:
            self.hits += 1
            self._freq[address] += 1
            self._push(address)  # lazy: stale heap entries skipped later
            return True
        self.misses += 1
        if len(self._freq) >= self.capacity:
            self._evict()
        self._freq[address] = 1
        self._push(address)
        return False

    def _evict(self) -> None:
        while True:
            freq, stamp, addr = heapq.heappop(self._heap)
            if self._freq.get(addr) == freq and self._stamp.get(addr) == stamp:
                del self._freq[addr]
                del self._stamp[addr]
                return


def simulate_lfu(trace: TraceLike, capacity: int) -> CacheResult:
    """Run an LFU cache of ``capacity`` over ``trace``."""
    arr = as_trace(trace)
    cache = LFUCache(capacity)
    for addr in arr.tolist():
        cache.access(addr)
    return CacheResult(capacity=capacity, hits=cache.hits, misses=cache.misses)
