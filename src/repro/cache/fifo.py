"""FIFO cache simulation.

FIFO is the classic "simplification that reduces overhead" the paper's
introduction mentions production caches making; comparing its empirical
hit rate against the exact LRU curve answers the paper's motivating
question "are the ways in which the cache approximates LRU hurting its
performance?".  Unlike LRU, FIFO is *not* a stack algorithm (no inclusion
property), so each size must be simulated separately.
"""

from __future__ import annotations

from collections import deque

from .._typing import TraceLike, as_trace
from ..errors import CapacityError
from .lru import CacheResult


class FIFOCache:
    """A size-``capacity`` FIFO cache: evict in insertion order."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CapacityError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque = deque()
        self._resident: set = set()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._resident)

    def access(self, address: int) -> bool:
        """Access ``address``; return True on hit (no recency promotion)."""
        if address in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        if len(self._resident) >= self.capacity:
            evicted = self._queue.popleft()
            self._resident.discard(evicted)
        self._queue.append(address)
        self._resident.add(address)
        return False


def simulate_fifo(trace: TraceLike, capacity: int) -> CacheResult:
    """Run a FIFO cache of ``capacity`` over ``trace``."""
    arr = as_trace(trace)
    cache = FIFOCache(capacity)
    for addr in arr.tolist():
        cache.access(addr)
    return CacheResult(capacity=capacity, hits=cache.hits, misses=cache.misses)
