"""Shared type aliases and dtype policy.

The paper (Section 9.5) evaluates 32-bit versus 64-bit address/counter
widths.  Every algorithm in this package therefore takes a ``dtype``
parameter; this module centralizes validation and the conversion of traces
into canonical contiguous integer arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from .errors import TraceError

#: Types accepted wherever a trace is expected.
TraceLike = Union[np.ndarray, Sequence[int], Iterable[int]]

#: dtypes supported for addresses and distance counters (Section 9.5).
SUPPORTED_DTYPES = (np.dtype(np.int32), np.dtype(np.int64))

#: Default counter/address width.  int64 is the safe default; int32 is the
#: paper's fast path when ``n`` and ``u`` fit in 32 bits.
DEFAULT_DTYPE = np.dtype(np.int64)


def validate_dtype(dtype: "np.typing.DTypeLike") -> np.dtype:
    """Return the canonical :class:`numpy.dtype`, rejecting unsupported ones.

    >>> validate_dtype("int32")
    dtype('int32')
    """
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        raise TraceError(
            f"unsupported dtype {dt!r}; supported: "
            + ", ".join(str(d) for d in SUPPORTED_DTYPES)
        )
    return dt


def as_trace(trace: TraceLike, dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE) -> np.ndarray:
    """Convert ``trace`` to a contiguous 1-D integer array of ``dtype``.

    Addresses must be non-negative integers.  Raises :class:`TraceError`
    on malformed input (floats, negative addresses, multi-dimensional
    arrays, or values that do not fit in ``dtype``).
    """
    dt = validate_dtype(dtype)
    arr = np.asarray(trace)
    if arr.ndim != 1:
        raise TraceError(f"trace must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TraceError(f"trace must contain integers, got dtype {arr.dtype}")
    if arr.size and int(arr.min()) < 0:
        raise TraceError("trace addresses must be non-negative")
    if arr.size and int(arr.max()) > np.iinfo(dt).max:
        raise TraceError(
            f"trace address {int(arr.max())} does not fit in {dt}"
        )
    return np.ascontiguousarray(arr, dtype=dt)
