"""CDN-flavoured synthetic workloads.

The paper's motivating deployment is a content-distribution cache, whose
traffic differs from a stationary Zipf draw in two ways this module
models:

* **Popularity churn** — what is hot changes over time.  Time is cut
  into epochs; each epoch migrates a fraction of the popularity ranks
  (new releases displace old hits), so the *distribution shape* is
  stable while its support drifts.  This is exactly the regime where
  windowed curves (Section 7) earn their keep.
* **Catalog growth** — genuinely new objects keep arriving (compulsory
  misses never stop).  A fraction of each epoch's requests goes to
  never-seen-before addresses.

Everything is deterministic under ``seed`` and returns plain traces, so
the generator composes with every algorithm and simulator in the
package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._typing import DEFAULT_DTYPE, validate_dtype
from ..errors import WorkloadError


@dataclass(frozen=True)
class CdnTraceSpec:
    """Parameters of one CDN-like trace."""

    requests: int
    catalog: int
    alpha: float = 0.8
    epochs: int = 8
    churn_fraction: float = 0.2
    new_object_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.requests < 0:
            raise WorkloadError(f"requests must be >= 0, got {self.requests}")
        if self.catalog < 1:
            raise WorkloadError(f"catalog must be >= 1, got {self.catalog}")
        if self.alpha < 0:
            raise WorkloadError(f"alpha must be >= 0, got {self.alpha}")
        if self.epochs < 1:
            raise WorkloadError(f"epochs must be >= 1, got {self.epochs}")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise WorkloadError("churn_fraction must be in [0, 1]")
        if not 0.0 <= self.new_object_fraction <= 1.0:
            raise WorkloadError("new_object_fraction must be in [0, 1]")


def cdn_trace(
    spec: CdnTraceSpec,
    *,
    seed: Optional[int] = None,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Materialize a trace from ``spec``.

    Rank ``r`` receives probability ∝ ``(r+1)^-alpha``; the rank→address
    assignment starts as the identity over ``[0, catalog)`` and each
    epoch reassigns ``churn_fraction`` of the *top half* of the ranks to
    fresh addresses (the realistic direction of churn: new content
    enters hot, old content decays into the tail).  Additionally each
    request is, with probability ``new_object_fraction``, a one-off
    access to a brand-new address.
    """
    dt = validate_dtype(dtype)
    rng = np.random.default_rng(seed)
    n, u = spec.requests, spec.catalog
    if n == 0:
        return np.zeros(0, dtype=dt)

    weights = (np.arange(1, u + 1, dtype=np.float64)) ** (-spec.alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    rank_to_addr = np.arange(u, dtype=np.int64)
    next_fresh = u  # addresses above the catalog are "new content"

    out = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, spec.epochs + 1).astype(np.int64)
    for e in range(spec.epochs):
        lo, hi = int(bounds[e]), int(bounds[e + 1])
        if e > 0 and spec.churn_fraction > 0:
            hot = max(1, u // 2)
            k = int(round(spec.churn_fraction * hot))
            if k:
                which = rng.choice(hot, size=k, replace=False)
                rank_to_addr[which] = np.arange(
                    next_fresh, next_fresh + k, dtype=np.int64
                )
                next_fresh += k
        count = hi - lo
        ranks = np.searchsorted(cdf, rng.random(count), side="left")
        epoch_trace = rank_to_addr[ranks]
        fresh_mask = rng.random(count) < spec.new_object_fraction
        n_fresh = int(fresh_mask.sum())
        if n_fresh:
            epoch_trace = epoch_trace.copy()
            epoch_trace[fresh_mask] = np.arange(
                next_fresh, next_fresh + n_fresh, dtype=np.int64
            )
            next_fresh += n_fresh
        out[lo:hi] = epoch_trace
    if int(out.max()) > np.iinfo(dt).max:
        raise WorkloadError(f"trace addresses overflow dtype {dt}")
    return out.astype(dt)


def simple_cdn_trace(
    requests: int,
    catalog: int,
    *,
    alpha: float = 0.8,
    seed: Optional[int] = None,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Convenience wrapper with default churn parameters."""
    return cdn_trace(
        CdnTraceSpec(requests=requests, catalog=catalog, alpha=alpha),
        seed=seed,
        dtype=dtype,
    )
