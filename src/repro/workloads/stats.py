"""Trace statistics: the quantities Table 1 and Section 9 reason about.

``n`` (requests), ``u`` (distinct ids), requests-per-id, per-address
frequency profiles, and compulsory-miss counts.  These are cheap,
vectorized, and used both by benchmarks (to print catalog rows) and by the
memory model (tree baselines scale with ``u``, IAF with ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .._typing import TraceLike, as_trace


@dataclass(frozen=True)
class TraceStats:
    """Summary of one trace."""

    n: int
    unique_ids: int
    requests_per_id: float
    max_frequency: int
    compulsory_misses: int

    @property
    def best_possible_hit_rate(self) -> float:
        """Hit rate of an infinite cache: 1 - u/n (first touches always miss)."""
        return 0.0 if self.n == 0 else 1.0 - self.unique_ids / self.n


def trace_stats(trace: TraceLike) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` in O(n log n)."""
    arr = as_trace(trace)
    if arr.size == 0:
        return TraceStats(0, 0, 0.0, 0, 0)
    _, counts = np.unique(arr, return_counts=True)
    u = int(counts.size)
    return TraceStats(
        n=int(arr.size),
        unique_ids=u,
        requests_per_id=arr.size / u,
        max_frequency=int(counts.max()),
        compulsory_misses=u,
    )


def frequency_profile(trace: TraceLike, buckets: int = 10) -> Dict[str, int]:
    """Histogram of per-address access counts in log-spaced buckets.

    Returns a mapping like ``{"1": 412, "2-3": 96, "4-7": 11, ...}`` —
    handy for eyeballing how skewed a Zipfian trace actually came out.
    """
    arr = as_trace(trace)
    if arr.size == 0:
        return {}
    _, counts = np.unique(arr, return_counts=True)
    out: Dict[str, int] = {}
    lo = 1
    for _ in range(buckets):
        hi = lo * 2 - 1
        mask = (counts >= lo) & (counts <= hi)
        label = str(lo) if lo == hi else f"{lo}-{hi}"
        if mask.any():
            out[label] = int(mask.sum())
        if hi >= counts.max():
            break
        lo = hi + 1
    return out


def unique_prefix_counts(trace: TraceLike) -> np.ndarray:
    """``out[i]`` = number of distinct addresses in ``trace[: i + 1]``.

    Vectorized working-set growth curve; the value at the end equals ``u``.
    """
    arr = as_trace(trace)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    # First occurrence positions: stable sort by address, mark run heads.
    order = np.argsort(arr, kind="stable")
    sorted_vals = arr[order]
    is_head = np.empty(arr.size, dtype=bool)
    is_head[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=is_head[1:])
    first_seen = np.zeros(arr.size, dtype=np.int64)
    first_seen[order] = is_head
    return np.cumsum(first_seen)
