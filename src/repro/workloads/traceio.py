"""Binary trace file format with streaming access.

Large production traces do not fit in memory; the paper's external-memory
variants (Section 5) assume the trace streams from disk.  This module
defines a small self-describing binary format:

``REPROTRC`` magic (8 bytes) | version u32 | dtype code u32 | n u64 |
raw little-endian address payload.

Readers can load the whole trace, stream fixed-size chunks (the access
pattern of BOUNDED-INCREMENT-AND-FREEZE), or memory-map the payload.
"""

from __future__ import annotations

import os
import struct
from typing import Iterator, Union

import numpy as np

from .._typing import validate_dtype
from ..errors import TraceFileError

MAGIC = b"REPROTRC"
VERSION = 1
_HEADER = struct.Struct("<8sII Q")  # magic, version, dtype code, n

_DTYPE_CODES = {np.dtype(np.int32): 4, np.dtype(np.int64): 8}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}

PathLike = Union[str, os.PathLike]


def write_trace(path: PathLike, trace: np.ndarray) -> None:
    """Write ``trace`` to ``path`` in the REPROTRC format."""
    arr = np.ascontiguousarray(trace)
    dt = validate_dtype(arr.dtype)
    header = _HEADER.pack(MAGIC, VERSION, _DTYPE_CODES[dt], arr.size)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(arr.astype(dt.newbyteorder("<"), copy=False).tobytes())


def _open_for_read(path: PathLike):
    """Open a trace file, folding OS errors into :class:`TraceFileError`.

    A missing or unreadable path is a user-input problem the CLI must
    report as an error message (exit code 2), not a traceback.
    """
    try:
        return open(path, "rb")
    except OSError as exc:
        raise TraceFileError(f"cannot open trace file: {exc}") from exc


def _read_header(fh) -> tuple[np.dtype, int]:
    raw = fh.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise TraceFileError("trace file truncated in header")
    magic, version, code, n = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFileError(f"bad magic {magic!r}; not a REPROTRC file")
    if version != VERSION:
        raise TraceFileError(f"unsupported trace file version {version}")
    if code not in _CODE_DTYPES:
        raise TraceFileError(f"unknown dtype code {code}")
    return _CODE_DTYPES[code], n


def trace_info(path: PathLike) -> tuple[np.dtype, int]:
    """Return ``(dtype, length)`` from a trace file header."""
    with _open_for_read(path) as fh:
        return _read_header(fh)


def read_trace(path: PathLike) -> np.ndarray:
    """Load an entire trace file into memory."""
    with _open_for_read(path) as fh:
        dt, n = _read_header(fh)
        payload = fh.read(n * dt.itemsize)
        if len(payload) != n * dt.itemsize:
            raise TraceFileError(
                f"trace file truncated: expected {n} items, payload short"
            )
        return np.frombuffer(payload, dtype=dt.newbyteorder("<")).astype(dt)


def stream_trace(path: PathLike, chunk_len: int) -> Iterator[np.ndarray]:
    """Yield the trace in chunks of at most ``chunk_len`` accesses.

    This is the exact access pattern of BOUNDED-INCREMENT-AND-FREEZE: the
    algorithm needs only O(k) state, so the trace never has to be resident.
    """
    if chunk_len < 1:
        raise TraceFileError(f"chunk_len must be >= 1, got {chunk_len}")
    with _open_for_read(path) as fh:
        dt, n = _read_header(fh)
        remaining = n
        while remaining > 0:
            take = min(chunk_len, remaining)
            payload = fh.read(take * dt.itemsize)
            if len(payload) != take * dt.itemsize:
                raise TraceFileError("trace file truncated mid-stream")
            yield np.frombuffer(payload, dtype=dt.newbyteorder("<")).astype(dt)
            remaining -= take


def mmap_trace(path: PathLike) -> np.ndarray:
    """Memory-map the trace payload (read-only view, zero copy)."""
    dt, n = trace_info(path)
    return np.memmap(
        path, dtype=dt.newbyteorder("<"), mode="r", offset=_HEADER.size, shape=(n,)
    )
