"""The Table-1 workload catalog, scaled to this reproduction's substrate.

The paper's Table 1 defines five synthetic workload sizes:

=======  =========  =======  ===============
Name     Requests   IDs      Requests per ID
=======  =========  =======  ===============
Tiny     4e+7       2e+5     200
Small    1e+8       4e+6     25
Medium   5e+8       2e+7     25
Large    1e+9       1.6e+8   6.25
Huge     1e+10      2.68e+8  37.25
=======  =========  =======  ===============

A C++ implementation on a 24-core Xeon processes these in seconds to
hours.  This reproduction runs pure Python/numpy on one core, so the
catalog keeps the **requests-per-ID ratios** (which drive every
qualitative result: IAF-vs-tree crossovers, the memory story of Table 2b,
Bound-IAF's advantage when n >> u) while scaling absolute sizes down by
roughly 200-500x.  Each named size also carries the paper's distribution
suite: uniform plus Zipf alpha in {0.1, 0.2, 0.4, 0.6, 0.8}, and the
cache-size limits used in Section 9.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import WorkloadError
from .synthetic import uniform_trace, zipfian_trace

#: Zipf skew values from Section 9.1.
ZIPF_ALPHAS = (0.1, 0.2, 0.4, 0.6, 0.8)

#: Distribution names in the order benchmarks iterate them.
DISTRIBUTIONS = ("uniform",) + tuple(f"zipf-{a}" for a in ZIPF_ALPHAS)


@dataclass(frozen=True)
class WorkloadSpec:
    """One named row of the (scaled) Table 1 catalog.

    ``cache_limit`` is the Section 9.3 user-provided maximum cache size
    for this workload, scaled with the same factor as ``ids``.
    """

    name: str
    requests: int
    ids: int
    cache_limit: int

    @property
    def requests_per_id(self) -> float:
        """The n/u ratio that Table 1 reports per row."""
        return self.requests / self.ids

    def generate(self, distribution: str = "uniform", *, seed: int = 0,
                 dtype: "np.typing.DTypeLike" = np.int64) -> np.ndarray:
        """Materialize this workload under one of the paper's distributions."""
        if distribution == "uniform":
            return uniform_trace(self.requests, self.ids, seed=seed, dtype=dtype)
        if distribution.startswith("zipf-"):
            alpha = float(distribution.split("-", 1)[1])
            return zipfian_trace(
                self.requests, self.ids, alpha, seed=seed, dtype=dtype
            )
        raise WorkloadError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {DISTRIBUTIONS}"
        )

    def generate_all(self, *, seed: int = 0,
                     dtype: "np.typing.DTypeLike" = np.int64
                     ) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(distribution_name, trace)`` for the full suite."""
        for dist in DISTRIBUTIONS:
            yield dist, self.generate(dist, seed=seed, dtype=dtype)


# Scaled catalog (paper sizes divided by ~800-10000, keeping the Table-1
# requests-per-id ratios exactly: 200, 25, 25, 6.25, 37.25).  Cache limits
# keep the paper's limit/ids proportions: 7.5e4/2e5=0.375,
# 1.5e6/4e6=0.375, 8e6/2e7=0.4, 6.7e7/1.6e8=0.41875, 6.7e7/2.68e8=0.25.
CATALOG: Dict[str, WorkloadSpec] = {
    "tiny": WorkloadSpec("tiny", requests=50_000, ids=250, cache_limit=94),
    "small": WorkloadSpec("small", requests=125_000, ids=5_000, cache_limit=1_875),
    "medium": WorkloadSpec("medium", requests=250_000, ids=10_000, cache_limit=4_000),
    "large": WorkloadSpec("large", requests=500_000, ids=80_000, cache_limit=33_500),
    "huge": WorkloadSpec("huge", requests=1_000_000, ids=26_800, cache_limit=6_700),
}

#: Catalog rows in Table-1 order.
SIZES: Tuple[str, ...] = ("tiny", "small", "medium", "large", "huge")


def get_workload(name: str) -> WorkloadSpec:
    """Look up a catalog row by (case-insensitive) name."""
    try:
        return CATALOG[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(SIZES)}"
        ) from None


def catalog_table() -> List[Tuple[str, int, int, float]]:
    """Rows of the scaled Table 1: (name, requests, ids, requests_per_id)."""
    return [
        (spec.name, spec.requests, spec.ids, spec.requests_per_id)
        for spec in (CATALOG[s] for s in SIZES)
    ]
