"""Workload substrate: synthetic generators, the Table-1 catalog, trace IO."""

from .catalog import (
    CATALOG,
    DISTRIBUTIONS,
    SIZES,
    ZIPF_ALPHAS,
    WorkloadSpec,
    catalog_table,
    get_workload,
)
from .cdn import CdnTraceSpec, cdn_trace, simple_cdn_trace
from .stats import TraceStats, frequency_profile, trace_stats, unique_prefix_counts
from .synthetic import (
    mixture_trace,
    sequential_scan_trace,
    stack_depth_trace,
    uniform_trace,
    working_set_trace,
    zipfian_trace,
)
from .traceio import mmap_trace, read_trace, stream_trace, trace_info, write_trace

__all__ = [
    "CATALOG",
    "DISTRIBUTIONS",
    "SIZES",
    "ZIPF_ALPHAS",
    "WorkloadSpec",
    "catalog_table",
    "get_workload",
    "CdnTraceSpec",
    "cdn_trace",
    "simple_cdn_trace",
    "TraceStats",
    "frequency_profile",
    "trace_stats",
    "unique_prefix_counts",
    "mixture_trace",
    "sequential_scan_trace",
    "stack_depth_trace",
    "uniform_trace",
    "working_set_trace",
    "zipfian_trace",
    "mmap_trace",
    "read_trace",
    "stream_trace",
    "trace_info",
    "write_trace",
]
