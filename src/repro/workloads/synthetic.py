"""Synthetic trace generators.

The paper evaluates on synthetic traces drawn from a uniform distribution
and from Zipfian distributions with skew ``alpha`` in {0.1, 0.2, 0.4, 0.6,
0.8} (Section 9.1).  This module reproduces those generators, plus a
handful of structured workloads (scans, phased working sets, mixtures)
used by the examples and the windowed-curve experiments.

All generators are deterministic given a ``seed`` and return contiguous
integer numpy arrays suitable for every algorithm in :mod:`repro`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._typing import DEFAULT_DTYPE, validate_dtype
from ..errors import WorkloadError


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_sizes(n: int, universe: int) -> None:
    if n < 0:
        raise WorkloadError(f"trace length must be >= 0, got {n}")
    if universe < 1:
        raise WorkloadError(f"universe size must be >= 1, got {universe}")


def uniform_trace(
    n: int,
    universe: int,
    *,
    seed: Optional[int] = None,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Trace of ``n`` accesses drawn uniformly from ``[0, universe)``."""
    _check_sizes(n, universe)
    dt = validate_dtype(dtype)
    return _rng(seed).integers(0, universe, size=n, dtype=dt)


def zipfian_trace(
    n: int,
    universe: int,
    alpha: float,
    *,
    seed: Optional[int] = None,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Trace of ``n`` accesses from a Zipf(``alpha``) law over ``universe`` ids.

    Address ``i`` (0-based rank) has probability proportional to
    ``(i + 1) ** -alpha``.  ``alpha = 0`` degenerates to the uniform
    distribution; the paper uses alpha in [0.1, 0.8], where the harmonic
    normalizer is finite for any finite universe.

    Sampling is done by inverse-transform against the exact CDF, which is
    O(universe) setup and O(n log universe) sampling — deterministic and
    exact, unlike rejection methods.
    """
    _check_sizes(n, universe)
    if alpha < 0:
        raise WorkloadError(f"zipf alpha must be >= 0, got {alpha}")
    dt = validate_dtype(dtype)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** (-float(alpha))
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    points = _rng(seed).random(n)
    # searchsorted returns the rank index (0-based address).
    return np.searchsorted(cdf, points, side="left").astype(dt)


def sequential_scan_trace(
    n: int,
    universe: int,
    *,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Cyclic sequential scan: 0,1,...,u-1,0,1,...  The LRU worst case.

    Every access to a previously seen address has stack distance exactly
    ``universe``, so the hit-rate curve is a step function: 0 below
    ``universe``, and ``(n - universe) / n`` at and above it.
    """
    _check_sizes(n, universe)
    dt = validate_dtype(dtype)
    return (np.arange(n, dtype=np.int64) % universe).astype(dt)


def working_set_trace(
    n: int,
    universe: int,
    *,
    phases: int = 4,
    working_set_size: Optional[int] = None,
    seed: Optional[int] = None,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Phased workload: each phase accesses a disjoint working set uniformly.

    Models the "the answers change over time" motivation from the paper's
    introduction — the per-window hit-rate curves produced by
    BOUNDED-INCREMENT-AND-FREEZE differ sharply across phases while the
    whole-trace curve blurs them together.

    ``working_set_size`` defaults to ``universe // phases`` (disjoint
    sets); phases wrap around the universe if a larger size is requested.
    """
    _check_sizes(n, universe)
    if phases < 1:
        raise WorkloadError(f"phases must be >= 1, got {phases}")
    wss = universe // phases if working_set_size is None else working_set_size
    if wss < 1 or wss > universe:
        raise WorkloadError(
            f"working_set_size must be in [1, {universe}], got {wss}"
        )
    dt = validate_dtype(dtype)
    rng = _rng(seed)
    out = np.empty(n, dtype=dt)
    bounds = np.linspace(0, n, phases + 1).astype(np.int64)
    for p in range(phases):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        base = (p * wss) % universe
        offsets = rng.integers(0, wss, size=hi - lo, dtype=np.int64)
        out[lo:hi] = ((base + offsets) % universe).astype(dt)
    return out


def mixture_trace(
    parts: Sequence[np.ndarray],
    *,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Interleave several traces by a random round-robin shuffle of origin.

    Each input trace is consumed in order; which trace supplies the next
    access is chosen uniformly.  Address spaces are assumed pre-disjoint
    (callers offset them); this helper does not remap.
    """
    parts = [np.asarray(p) for p in parts]
    if not parts:
        raise WorkloadError("mixture_trace requires at least one part")
    if any(p.ndim != 1 for p in parts):
        raise WorkloadError("all mixture parts must be 1-D traces")
    total = sum(p.size for p in parts)
    if total == 0:
        return np.empty(0, dtype=parts[0].dtype)
    origin = np.repeat(np.arange(len(parts)), [p.size for p in parts])
    _rng(seed).shuffle(origin)
    out = np.empty(total, dtype=np.result_type(*[p.dtype for p in parts]))
    for idx, part in enumerate(parts):
        out[origin == idx] = part
    return out


def stack_depth_trace(
    n: int,
    depths: Sequence[int],
    *,
    seed: Optional[int] = None,
    dtype: "np.typing.DTypeLike" = DEFAULT_DTYPE,
) -> np.ndarray:
    """Generate a trace whose accesses have (approximately) given stack depths.

    Classic LRU-stack-model generator: maintain an explicit LRU stack;
    each access picks a depth from ``depths`` uniformly at random and
    touches the element at that depth (promoting it to the front), or a
    brand-new address when the chosen depth exceeds the current stack.
    Useful for constructing traces whose hit-rate curve has known knees.
    """
    _check_sizes(n, 1)
    depths_arr = np.asarray(list(depths), dtype=np.int64)
    if depths_arr.size == 0:
        raise WorkloadError("depths must be non-empty")
    if (depths_arr < 1).any():
        raise WorkloadError("stack depths must be >= 1")
    dt = validate_dtype(dtype)
    rng = _rng(seed)
    stack: list[int] = []
    next_addr = 0
    out = np.empty(n, dtype=dt)
    choices = rng.integers(0, depths_arr.size, size=n)
    for i in range(n):
        depth = int(depths_arr[choices[i]])
        if depth > len(stack):
            addr = next_addr
            next_addr += 1
        else:
            addr = stack.pop(depth - 1)
        stack.insert(0, addr)
        out[i] = addr
    return out
