"""Differential testing and fuzzing for every implementation in ``repro``.

The package has five independent ways to compute the same hit-rate curve
(vectorized engine, pure-python reference, tree/Mattson/PARDA baselines,
ground-truth simulators) plus weighted/bounded/streaming/parallel
variants — exactly the situation where silent divergence bugs hide.
This subpackage turns that redundancy into an always-on randomized
cross-validation harness:

* :mod:`repro.qa.strategies` — seeded adversarial trace/config
  generators; a case is a pure function of ``(seed, profile)``.
* :mod:`repro.qa.oracle` — the pairwise oracle matrix; one call checks
  one case against every registered implementation and reports the first
  diverging index (never raises).
* :mod:`repro.qa.shrink` — delta-debugging minimizer that reduces any
  failing case to a minimal reproducer and renders it as a
  ready-to-paste pytest regression.
* :mod:`repro.qa.accuracy` — the sampled-vs-exact error harness behind
  the CI accuracy gate and ``docs/ACCURACY.md``.

Driven by ``python -m repro fuzz`` (see ``docs/FUZZING.md``) and by the
deterministic matrix suite in ``tests/qa/``.
"""

from .accuracy import (
    MAX_BOUND,
    MEAN_BOUND,
    REFERENCE_RATE,
    WORKLOADS,
    AccuracyRow,
    AccuracyWorkload,
    markdown_table,
    measure,
    measure_workload,
)
from .faults import WorkerKillPlan, inject_worker_kills
from .oracle import (
    Divergence,
    OracleReport,
    run_case,
    run_case_detailed,
)
from .shrink import divergence_signature, shrink_case, to_pytest
from .strategies import (
    PROFILES,
    STRATEGIES,
    WORKER_CHOICES,
    FuzzCase,
    FuzzConfig,
    case_from_seed,
    object_sizes_for,
    push_plan_for,
    sample_case,
    sample_config,
)

__all__ = [
    "Divergence",
    "OracleReport",
    "run_case",
    "run_case_detailed",
    "divergence_signature",
    "shrink_case",
    "to_pytest",
    "PROFILES",
    "STRATEGIES",
    "WORKER_CHOICES",
    "FuzzCase",
    "FuzzConfig",
    "case_from_seed",
    "object_sizes_for",
    "push_plan_for",
    "sample_case",
    "sample_config",
    "WorkerKillPlan",
    "inject_worker_kills",
    "AccuracyRow",
    "AccuracyWorkload",
    "MAX_BOUND",
    "MEAN_BOUND",
    "REFERENCE_RATE",
    "WORKLOADS",
    "markdown_table",
    "measure",
    "measure_workload",
]
