"""Seeded generators of adversarial traces and configurations.

Every fuzz case is a pure function of ``(seed, profile)``: the seed feeds
one :class:`numpy.random.Generator`, which draws first the trace strategy
and its parameters, then the configuration knobs.  That makes every
failure replayable from a single integer — the property the shrinker and
the committed regression tests rely on.

The strategies are chosen to hit the places stack-distance bookkeeping
historically breaks:

* ``zipfian`` / ``uniform``      — generic skewed / unstructured reuse.
* ``scan_loop``                  — cyclic scans, LRU's worst case; every
  distance equals the loop length, stressing the curve's step edges.
* ``phase_shift``                — disjoint working sets, stressing the
  windowed/bounded variants across chunk boundaries.
* ``duplicate_heavy``            — tiny universes, maximal merge/shrink
  activity inside the engine.
* ``single_address``             — the degenerate all-hits trace.
* ``empty``                      — the n = 0 edge everywhere.
* ``near_dtype_limit``           — addresses adjacent to the dtype's max,
  catching silent-overflow/lossy-cast paths (Section 9.5's int32 mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .._typing import validate_dtype
from ..workloads.synthetic import (
    sequential_scan_trace,
    uniform_trace,
    working_set_trace,
    zipfian_trace,
)

#: Fuzz profiles: trace-size ceilings and how often the expensive
#: implementations (process pools, quadratic oracles) join the matrix.
PROFILES = ("quick", "deep")

#: Thread/process worker counts the oracle cycles through.
WORKER_CHOICES = (1, 2, 3, 7)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs shared by every implementation in one oracle run."""

    workers: int = 2              #: thread workers for the parallel paths
    process_workers: int = 0      #: process workers (0 = skip process pools)
    k: int = 8                    #: bounded/streaming max cache size
    chunk_multiplier: int = 1     #: chunk length scale for bounded/streaming
    chunk_size: int = 0           #: chunked-iaf chunk length (0 = default)
    dtype: str = "int64"          #: address dtype ("int32" | "int64")
    push_seed: int = 0            #: seed for streaming push batch sizes
    sizes_seed: int = 0           #: seed for weighted object sizes
    max_object_size: int = 8      #: object sizes drawn from [1, this]
    check_reference: bool = True  #: include the pure-python recursion
    check_naive: bool = True      #: include the O(n^2) oracles
    sample_rate: float = 1.0      #: sampled-iaf rate (1.0 = degenerate/exact)
    sample_seed: int = 0          #: sampled-iaf hash-perturbation seed

    def numpy_dtype(self) -> np.dtype:
        return validate_dtype(self.dtype)


@dataclass(frozen=True)
class FuzzCase:
    """One differential-testing input: a trace plus a configuration."""

    seed: int
    strategy: str
    trace: np.ndarray = field(repr=False)
    config: FuzzConfig = field(default_factory=FuzzConfig)

    def summary(self) -> str:
        u = int(self.trace.max()) + 1 if self.trace.size else 0
        return (
            f"seed={self.seed} strategy={self.strategy} "
            f"n={self.trace.size} u<={u} workers={self.config.workers} "
            f"procs={self.config.process_workers} k={self.config.k} "
            f"mult={self.config.chunk_multiplier} "
            f"chunk={self.config.chunk_size} dtype={self.config.dtype}"
        )


TraceStrategy = Callable[[np.random.Generator, int, int, np.dtype], np.ndarray]


def _zipfian(rng, n, universe, dt):
    alpha = float(rng.uniform(0.1, 1.2))
    return zipfian_trace(n, universe, alpha, seed=int(rng.integers(2**31)),
                         dtype=dt)


def _uniform(rng, n, universe, dt):
    return uniform_trace(n, universe, seed=int(rng.integers(2**31)), dtype=dt)


def _scan_loop(rng, n, universe, dt):
    # A cyclic scan over a loop smaller than the trace, so it wraps.
    loop = int(rng.integers(1, max(2, universe)))
    return sequential_scan_trace(n, loop, dtype=dt)


def _phase_shift(rng, n, universe, dt):
    phases = int(rng.integers(2, 6))
    wss = max(1, universe // phases)
    return working_set_trace(n, universe, phases=phases,
                             working_set_size=wss,
                             seed=int(rng.integers(2**31)), dtype=dt)


def _duplicate_heavy(rng, n, universe, dt):
    few = int(rng.integers(1, 5))
    return uniform_trace(n, few, seed=int(rng.integers(2**31)), dtype=dt)


def _single_address(rng, n, universe, dt):
    addr = int(rng.integers(0, universe))
    return np.full(n, addr, dtype=dt)


def _empty(rng, n, universe, dt):
    return np.zeros(0, dtype=dt)


def _near_dtype_limit(rng, n, universe, dt):
    # Sparse addresses hugging iinfo(dtype).max: position bookkeeping must
    # never be confused with address magnitude.
    top = np.iinfo(dt).max
    base = top - int(universe)
    offsets = rng.integers(0, max(1, universe), size=n)
    return (base + offsets).astype(dt)


STRATEGIES: Dict[str, TraceStrategy] = {
    "zipfian": _zipfian,
    "uniform": _uniform,
    "scan_loop": _scan_loop,
    "phase_shift": _phase_shift,
    "duplicate_heavy": _duplicate_heavy,
    "single_address": _single_address,
    "empty": _empty,
    "near_dtype_limit": _near_dtype_limit,
}

#: Sampling weights: structured strategies dominate; degenerate ones
#: appear often enough to keep the edge cases hot.
_STRATEGY_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("zipfian", 0.22),
    ("uniform", 0.14),
    ("scan_loop", 0.16),
    ("phase_shift", 0.14),
    ("duplicate_heavy", 0.16),
    ("single_address", 0.06),
    ("empty", 0.04),
    ("near_dtype_limit", 0.08),
)


def sample_config(
    rng: np.random.Generator, n: int, *, profile: str = "quick"
) -> FuzzConfig:
    """Draw one configuration; expensive knobs scale with the profile."""
    # The ring's shard backends lean on the executor path, so the fuzz
    # profiles draw it often: every run also pins one unconditional
    # process-iaf oracle row (see oracle.py); this knob additionally
    # covers the process-pool *distance* oracles.  Only the comparison
    # threshold changed — the draw itself stays in the historical rng
    # stream position, so seeded cases keep their traces.
    proc_p = 0.2 if profile == "quick" else 0.5
    return FuzzConfig(
        workers=int(rng.choice(WORKER_CHOICES)),
        process_workers=2 if rng.random() < proc_p else 0,
        k=int(rng.integers(1, max(2, min(64, n + 1)))),
        chunk_multiplier=int(rng.integers(1, 5)),
        dtype=str(rng.choice(("int32", "int64"))),
        push_seed=int(rng.integers(2**31)),
        sizes_seed=int(rng.integers(2**31)),
        max_object_size=int(rng.integers(1, 10)),
        check_reference=True,
        check_naive=True,
        # Drawn last so earlier draws keep their historical rng stream
        # (committed regression seeds stay replayable).  New knobs MUST
        # be appended after the existing tail draws, same reason.
        chunk_size=int(rng.integers(1, max(2, n + 1))),
        sample_rate=float(rng.choice((1.0, 0.5, 0.25, 0.05))),
        sample_seed=int(rng.integers(2**31)),
    )


def sample_case(
    rng: np.random.Generator, *, seed: int = 0, profile: str = "quick"
) -> FuzzCase:
    """Draw one full fuzz case from ``rng`` (see :func:`case_from_seed`)."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; one of {PROFILES}")
    names = [n for n, _w in _STRATEGY_WEIGHTS]
    weights = np.array([w for _n, w in _STRATEGY_WEIGHTS])
    strategy = str(rng.choice(names, p=weights / weights.sum()))
    max_n = 200 if profile == "quick" else 3000
    n = int(rng.integers(1, max_n + 1))
    universe = int(rng.integers(1, max(2, n)))
    dt = validate_dtype(str(rng.choice(("int32", "int64"))))
    trace = STRATEGIES[strategy](rng, n, universe, dt)
    config = sample_config(rng, trace.size, profile=profile)
    config = replace(config, dtype=str(trace.dtype))
    return FuzzCase(seed=seed, strategy=strategy, trace=trace, config=config)


def case_from_seed(seed: int, *, profile: str = "quick") -> FuzzCase:
    """The deterministic case for ``(seed, profile)`` — fully replayable."""
    rng = np.random.default_rng(seed)
    return sample_case(rng, seed=seed, profile=profile)


def object_sizes_for(case: FuzzCase) -> np.ndarray:
    """Per-address object sizes for the weighted oracle, from the config.

    Length covers every address in the trace; values in
    ``[1, max_object_size]``.  Deterministic given ``sizes_seed``.
    """
    u = int(case.trace.max()) + 1 if case.trace.size else 1
    rng = np.random.default_rng(case.config.sizes_seed)
    return rng.integers(1, case.config.max_object_size + 1, size=u,
                        dtype=np.int64)


def push_plan_for(case: FuzzCase) -> np.ndarray:
    """Streaming push batch sizes covering the trace, from the config."""
    rng = np.random.default_rng(case.config.push_seed)
    n = case.trace.size
    cuts: list[int] = []
    pos = 0
    while pos < n:
        step = int(rng.integers(1, max(2, min(n - pos, 3 * case.config.k)) + 1))
        step = min(step, n - pos)
        cuts.append(step)
        pos += step
    return np.asarray(cuts, dtype=np.int64)
