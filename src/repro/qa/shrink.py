"""Delta-debugging minimizer: failing fuzz case → tiny committed test.

Given a failing :class:`~repro.qa.strategies.FuzzCase` (one the oracle
matrix reports divergences for), :func:`shrink_case` searches for the
smallest case that still fails *with the same signature* — the same
implementation pair and quantity — by alternating four reduction passes
to a fixed point:

1. **drop chunks** — classic ddmin over the trace (remove contiguous
   chunks at doubling granularity);
2. **halve addresses** — ``a -> a // 2``, then a dense rank remap, so
   huge or sparse address values shrink to small ones;
3. **shrink the config** — workers toward 1 (a failure that needs >1
   worker stops there), ``k`` halved toward 1, ``chunk_multiplier`` to 1,
   process pools off, object sizes toward unit weights;
4. repeat until nothing shrinks.

The result is deterministic (no randomness in the search) and
:func:`to_pytest` renders it as a ready-to-paste regression test that
reconstructs the minimal case literally and asserts the oracle matrix
passes — so the committed test keeps guarding all implementations, not
just the pair that diverged today.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from .oracle import Divergence, run_case
from .strategies import FuzzCase, FuzzConfig

#: Signature a shrunk case must preserve: (impl_a, impl_b, quantity).
Signature = Tuple[str, str, str]


def divergence_signature(d: Divergence) -> Signature:
    return (d.impl_a, d.impl_b, d.quantity)


def _default_failing(signature: Signature) -> Callable[[FuzzCase], bool]:
    def failing(case: FuzzCase) -> bool:
        return any(
            divergence_signature(d) == signature for d in run_case(case)
        )

    return failing


def _with_trace(case: FuzzCase, trace: np.ndarray) -> FuzzCase:
    return replace(case, trace=np.ascontiguousarray(trace))


def _ddmin_trace(
    case: FuzzCase, failing: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Zeller's ddmin on the trace: drop complement chunks, refine."""
    trace = case.trace
    granularity = 2
    while trace.size >= 2 and granularity <= trace.size:
        chunk = max(1, int(np.ceil(trace.size / granularity)))
        shrunk = False
        start = 0
        while start < trace.size:
            candidate = np.concatenate(
                [trace[:start], trace[start + chunk :]]
            )
            if candidate.size < trace.size and failing(
                _with_trace(case, candidate)
            ):
                trace = candidate
                granularity = max(granularity - 1, 2)
                shrunk = True
                # Re-scan from the front at the new length.
                start = 0
                continue
            start += chunk
        if not shrunk:
            if granularity >= trace.size:
                break
            granularity = min(trace.size, 2 * granularity)
    return _with_trace(case, trace)


def _shrink_addresses(
    case: FuzzCase, failing: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Make address values small: halving passes, then a dense remap."""
    trace = case.trace
    if trace.size == 0:
        return case
    while int(trace.max()) > 0:
        candidate = trace // 2
        if failing(_with_trace(case, candidate)):
            trace = candidate
        else:
            break
    if trace.size:
        _, dense = np.unique(trace, return_inverse=True)
        dense = dense.astype(trace.dtype)
        if not np.array_equal(dense, trace) and failing(
            _with_trace(case, dense)
        ):
            trace = dense
    return _with_trace(case, trace)


def _shrink_config(
    case: FuzzCase, failing: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Lower every configuration knob that keeps the failure alive."""
    cfg = case.config

    def attempt(**kwargs) -> None:
        nonlocal cfg, case
        candidate = replace(case, config=replace(cfg, **kwargs))
        if failing(candidate):
            case = candidate
            cfg = candidate.config

    if cfg.process_workers:
        attempt(process_workers=0)
    for w in range(1, cfg.workers):
        before = cfg.workers
        attempt(workers=w)
        if cfg.workers != before:
            break
    while cfg.k > 1:
        before = cfg.k
        attempt(k=max(1, cfg.k // 2))
        if cfg.k == before:
            break
    if cfg.chunk_multiplier > 1:
        attempt(chunk_multiplier=1)
    if cfg.max_object_size > 1:
        before = cfg.max_object_size
        attempt(max_object_size=1)
        if cfg.max_object_size == before and cfg.max_object_size > 2:
            attempt(max_object_size=2)
    if cfg.dtype != "int64":
        candidate = replace(
            case,
            trace=case.trace.astype(np.int64),
            config=replace(cfg, dtype="int64"),
        )
        if failing(candidate):
            case = candidate
    return case


def shrink_case(
    case: FuzzCase,
    signature: Optional[Signature] = None,
    *,
    failing: Optional[Callable[[FuzzCase], bool]] = None,
    max_rounds: int = 8,
) -> FuzzCase:
    """Minimize ``case`` while it keeps failing with ``signature``.

    ``failing`` overrides the predicate (used by tests); by default a
    case "fails" when the oracle matrix reproduces a divergence with the
    given signature (or, when ``signature`` is ``None``, the signature of
    the first divergence the unshrunken case produces).
    """
    if failing is None:
        if signature is None:
            divs = run_case(case)
            if not divs:
                raise ValueError("case does not fail; nothing to shrink")
            signature = divergence_signature(divs[0])
        failing = _default_failing(signature)
    if not failing(case):
        raise ValueError("case does not fail under the given predicate")
    for _ in range(max_rounds):
        before = (case.trace.size, int(case.trace.sum()) if case.trace.size
                  else 0, case.config)
        case = _ddmin_trace(case, failing)
        case = _shrink_addresses(case, failing)
        case = _shrink_config(case, failing)
        after = (case.trace.size, int(case.trace.sum()) if case.trace.size
                 else 0, case.config)
        if after == before:
            break
    return replace(case, strategy=f"{case.strategy}-minimized")


def _format_trace(trace: np.ndarray) -> str:
    values = ", ".join(str(int(v)) for v in trace.tolist())
    return f"np.array([{values}], dtype=np.{trace.dtype})"


def _format_config(cfg: FuzzConfig) -> str:
    defaults = FuzzConfig()
    parts: List[str] = []
    for name in (
        "workers", "process_workers", "k", "chunk_multiplier", "dtype",
        "push_seed", "sizes_seed", "max_object_size",
    ):
        value = getattr(cfg, name)
        if value != getattr(defaults, name):
            parts.append(f"{name}={value!r}" if isinstance(value, str)
                         else f"{name}={value}")
    return f"FuzzConfig({', '.join(parts)})"


def to_pytest(
    case: FuzzCase, divergence: Optional[Divergence] = None
) -> str:
    """Render ``case`` as a ready-to-paste pytest regression.

    The generated test reconstructs the exact minimal case and asserts
    the whole oracle matrix agrees on it — paste it into
    ``tests/qa/test_regressions.py`` and it guards the fix forever.
    """
    what = (
        f"    # {divergence.describe()}\n" if divergence is not None else ""
    )
    name = f"test_fuzz_regression_seed_{case.seed}"
    return (
        "def {name}():\n"
        "    \"\"\"Minimized by repro.qa.shrink from fuzz seed {seed} "
        "({strategy}).\"\"\"\n"
        "{what}"
        "    import numpy as np\n"
        "    from repro.qa import FuzzCase, FuzzConfig, run_case\n"
        "\n"
        "    case = FuzzCase(\n"
        "        seed={seed},\n"
        "        strategy={strategy!r},\n"
        "        trace={trace},\n"
        "        config={config},\n"
        "    )\n"
        "    assert run_case(case) == []\n"
    ).format(
        name=name,
        seed=case.seed,
        strategy=case.strategy,
        what=what,
        trace=_format_trace(case.trace),
        config=_format_config(case.config),
    )
