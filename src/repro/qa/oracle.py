"""The pairwise oracle matrix: every implementation against ground truth.

One :func:`run_case` call pushes a single :class:`~repro.qa.strategies.FuzzCase`
through every registered implementation and demands **exact** agreement:

* backward distance vectors — vectorized engine (the hub), pure-python
  reference recursion, O(n²) definitional oracle, thread-pool and
  process-pool parallel variants;
* hit-rate curves — engine pipeline (the hub), the chunked incremental
  engine (``chunked-iaf`` through the :func:`repro.solve` tier, at the
  case's fuzzed chunk size), the sharded ``process-iaf`` tier,
  BOUNDED-IAF, PARALLEL-BOUNDED-IAF, the
  :class:`~repro.core.streaming.OnlineCurveAnalyzer` fed random push
  batches, and the Mattson/OST/splay/Fenwick/PARDA baselines;
* weighted (Section 9.1) distances — weighted engine (the hub), the
  brute-force weighted oracle, the weighted OST, and the weighted
  parallel paths (threads and processes).

Interpreter-speed oracles only join the matrix below size caps, so a
``deep``-profile trace of thousands of accesses still completes in
seconds while a ``quick`` trace is checked against everything.

Disagreement (or an implementation crash) is reported as a
:class:`Divergence` carrying the first diverging index — never raised, so
the fuzz loop can shrink and keep going.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..baselines import baseline_hit_rate_curve
from ..baselines.naive import naive_backward_distances
from ..core import compiled as compiled_kernels
from ..core.bounded import bounded_iaf, parallel_bounded_iaf
from ..core.engine import iaf_distances, iaf_distances_batch
from ..core.hitrate import HitRateCurve, curve_from_backward_distances
from ..core.parallel import (
    parallel_iaf_distances,
    parallel_weighted_backward_distances,
    process_parallel_iaf_distances,
)
from ..core.prevnext import prev_next_arrays
from ..core.reference import reference_distances
from ..core.streaming import OnlineCurveAnalyzer
from ..core.weighted import (
    naive_weighted_stack_distances,
    ost_weighted_stack_distances,
    weighted_backward_distances,
    weighted_stack_distances,
)
from .strategies import FuzzCase, object_sizes_for, push_plan_for

#: Size caps for the interpreter-speed oracles (per implementation).
REFERENCE_MAX_N = 160       # pure-python Section-4 recursion
NAIVE_MAX_N = 160           # O(n^2) definitional oracles
TREE_BASELINE_MAX_N = 900   # OST / splay / Fenwick python loops
MATTSON_MAX_N = 500         # O(n*u) list-scan Mattson
WEIGHTED_MAX_ADDR = 1 << 16  # weighted oracles index sizes by address


@dataclass(frozen=True)
class Divergence:
    """Two implementations disagreed on one case (or one crashed).

    ``index`` is the first diverging position: a 0-based trace index for
    distance vectors, a 1-based cache size for curves, and ``-1`` for
    shape mismatches or crashes.  ``value_a``/``value_b`` are the values
    at that index (or a length / error description).
    """

    impl_a: str
    impl_b: str
    quantity: str  # "distances" | "curve" | "weighted-distances" | "crash"
    index: int
    value_a: str
    value_b: str

    def describe(self) -> str:
        if self.quantity == "crash":
            return (
                f"{self.impl_b} crashed ({self.value_b}) "
                f"while {self.impl_a} succeeded"
            )
        where = (
            f"cache size {self.index}"
            if self.quantity == "curve"
            else f"index {self.index}"
        )
        return (
            f"{self.quantity}: {self.impl_a} vs {self.impl_b} first "
            f"diverge at {where}: {self.value_a} != {self.value_b}"
        )


@dataclass
class OracleReport:
    """Everything one oracle run checked, and what disagreed."""

    case: FuzzCase
    divergences: List[Divergence] = field(default_factory=list)
    comparisons: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _first_diff_vec(a: np.ndarray, b: np.ndarray) -> Optional[Tuple[int, str, str]]:
    if a.size != b.size:
        return -1, f"length {a.size}", f"length {b.size}"
    if np.array_equal(a, b):
        return None
    idx = int(np.flatnonzero(a != b)[0])
    return idx, str(int(a[idx])), str(int(b[idx]))


def _hits_upto(curve: HitRateCurve, kmax: int) -> np.ndarray:
    """Hit counts at cache sizes 1..kmax (clamped flat tail included)."""
    return np.array([curve.hits(j) for j in range(1, kmax + 1)],
                    dtype=np.int64)


def _compare_curves(
    name_a: str,
    name_b: str,
    curve_a: HitRateCurve,
    curve_b: HitRateCurve,
    kmax: int,
) -> Optional[Divergence]:
    if curve_a.total_accesses != curve_b.total_accesses:
        return Divergence(
            name_a, name_b, "curve", -1,
            f"total {curve_a.total_accesses}",
            f"total {curve_b.total_accesses}",
        )
    diff = _first_diff_vec(_hits_upto(curve_a, kmax), _hits_upto(curve_b, kmax))
    if diff is None:
        return None
    idx, va, vb = diff
    return Divergence(name_a, name_b, "curve", idx + 1, va, vb)


def run_case(case: FuzzCase) -> List[Divergence]:
    """Run the full oracle matrix on one case; empty list means agreement."""
    return run_case_detailed(case).divergences


def run_case_detailed(case: FuzzCase) -> OracleReport:
    """Like :func:`run_case` but also reports which pairs were compared."""
    report = OracleReport(case)
    trace, cfg = case.trace, case.config
    n = trace.size

    # ---------------- backward distance vectors -----------------------------
    hub_name = "iaf"
    hub = iaf_distances(trace, dtype=cfg.numpy_dtype())

    def check_distances(name: str, fn: Callable[[], np.ndarray]) -> None:
        report.comparisons.append(f"{hub_name}~{name}:distances")
        try:
            got = np.asarray(fn())
        except Exception as exc:  # noqa: BLE001 — a crash IS the finding
            report.divergences.append(
                Divergence(hub_name, name, "crash", -1, "ok",
                           f"{type(exc).__name__}: {exc}")
            )
            return
        diff = _first_diff_vec(hub, got)
        if diff is not None:
            idx, va, vb = diff
            report.divergences.append(
                Divergence(hub_name, name, "distances", idx, va, vb)
            )

    check_distances(
        "iaf-naive-backend",
        lambda: iaf_distances(
            trace, dtype=cfg.numpy_dtype(), engine_backend="naive"
        ),
    )
    # The compiled backend joins the matrix only where it can actually
    # run (numba installed, or REPRO_COMPILED_PURE forcing the un-jitted
    # kernels) — on other hosts it would silently degrade to fused and
    # re-test the hub against itself.
    if compiled_kernels.is_available():
        check_distances(
            "compiled-iaf",
            lambda: iaf_distances(
                trace, dtype=cfg.numpy_dtype(), engine_backend="compiled"
            ),
        )
    _check_batch_split(report, case)
    if cfg.check_reference and n <= REFERENCE_MAX_N:
        check_distances("reference", lambda: reference_distances(trace))
    if cfg.check_naive and n <= NAIVE_MAX_N:
        check_distances("naive", lambda: naive_backward_distances(trace))
    check_distances(
        "parallel-threads",
        lambda: parallel_iaf_distances(
            trace, workers=cfg.workers, dtype=cfg.numpy_dtype()
        ),
    )
    if cfg.process_workers:
        check_distances(
            "parallel-procs",
            lambda: process_parallel_iaf_distances(
                trace, workers=cfg.process_workers, dtype=cfg.numpy_dtype()
            ),
        )

    # ---------------- hit-rate curves ---------------------------------------
    _, nxt = prev_next_arrays(trace)
    exact = curve_from_backward_distances(hub, nxt)
    full_kmax = max(1, exact.max_size)
    trunc_kmax = max(1, min(cfg.k, full_kmax))

    def check_curve(
        name: str, fn: Callable[[], HitRateCurve], kmax: int
    ) -> None:
        report.comparisons.append(f"iaf-curve~{name}:curve")
        try:
            got = fn()
        except Exception as exc:  # noqa: BLE001
            report.divergences.append(
                Divergence("iaf-curve", name, "crash", -1, "ok",
                           f"{type(exc).__name__}: {exc}")
            )
            return
        d = _compare_curves("iaf-curve", name, exact, got, kmax)
        if d is not None:
            report.divergences.append(d)

    check_curve(
        "bounded-iaf",
        lambda: bounded_iaf(
            trace, cfg.k, chunk_multiplier=cfg.chunk_multiplier,
            dtype=cfg.numpy_dtype(),
        ).curve,
        trunc_kmax,
    )
    check_curve(
        "parallel-bounded-iaf",
        lambda: parallel_bounded_iaf(
            trace, cfg.k, workers=cfg.workers,
            chunk_multiplier=cfg.chunk_multiplier, dtype=cfg.numpy_dtype(),
        ).curve,
        trunc_kmax,
    )
    check_curve(
        "online-analyzer", lambda: _streaming_curve(case), trunc_kmax
    )
    check_curve("chunked-iaf", lambda: _chunked_curve(case), full_kmax)
    if compiled_kernels.is_available():
        check_curve(
            "compiled-chunked-iaf",
            lambda: _chunked_curve(case, engine_backend="compiled"),
            full_kmax,
        )
    check_curve("tenant-exact", lambda: _tenant_curve(case), full_kmax)
    _check_sampled(report, case, exact)
    # Unconditional: the cluster's shard backends route oversized solves
    # through the executor, so the differential harness must cover the
    # process-iaf tier on *every* case, not just when the config drew
    # process workers for the distance oracles.  (With shared memory
    # unavailable the solve degrades in-process and still must match.)
    check_curve("process-iaf", lambda: _process_curve(case), full_kmax)
    if n <= TREE_BASELINE_MAX_N:
        for baseline in ("ost", "splay", "fenwick"):
            check_curve(
                baseline,
                lambda b=baseline: baseline_hit_rate_curve(trace, b),
                full_kmax,
            )
        check_curve(
            "parda",
            lambda: baseline_hit_rate_curve(
                trace, "parda", max_cache_size=cfg.k, workers=cfg.workers
            ),
            trunc_kmax,
        )
    if n <= MATTSON_MAX_N:
        check_curve(
            "mattson", lambda: baseline_hit_rate_curve(trace, "mattson"),
            full_kmax,
        )

    # ---------------- weighted (Section 9.1) distances ----------------------
    max_addr = int(trace.max()) if n else 0
    if max_addr < WEIGHTED_MAX_ADDR:
        sizes = object_sizes_for(case)
        w_hub_name = "weighted-engine"
        w_hub = weighted_backward_distances(trace, sizes)

        def check_weighted(name: str, fn: Callable[[], np.ndarray]) -> None:
            report.comparisons.append(
                f"{w_hub_name}~{name}:weighted-distances"
            )
            try:
                got = np.asarray(fn())
            except Exception as exc:  # noqa: BLE001
                report.divergences.append(
                    Divergence(w_hub_name, name, "crash", -1, "ok",
                               f"{type(exc).__name__}: {exc}")
                )
                return
            diff = _first_diff_vec(w_hub, got)
            if diff is not None:
                idx, va, vb = diff
                report.divergences.append(
                    Divergence(w_hub_name, name, "weighted-distances",
                               idx, va, vb)
                )

        check_weighted(
            "weighted-naive-backend",
            lambda: weighted_backward_distances(
                trace, sizes, engine_backend="naive"
            ),
        )
        if compiled_kernels.is_available():
            check_weighted(
                "weighted-compiled-backend",
                lambda: weighted_backward_distances(
                    trace, sizes, engine_backend="compiled"
                ),
            )
        check_weighted(
            "weighted-parallel-threads",
            lambda: parallel_weighted_backward_distances(
                trace, sizes, workers=cfg.workers
            ),
        )
        if cfg.process_workers:
            check_weighted(
                "weighted-parallel-procs",
                lambda: parallel_weighted_backward_distances(
                    trace, sizes, workers=cfg.process_workers,
                    use_processes=True,
                ),
            )
        # Forward (stack-distance) oracles: the engine's stack view is the
        # hub; the brute-force and weighted-OST loops share nothing with
        # the engine beyond trace validation.
        w_stack = weighted_stack_distances(trace, sizes)

        def check_stack(name: str, fn: Callable[[], np.ndarray]) -> None:
            report.comparisons.append(
                f"weighted-stack~{name}:weighted-distances"
            )
            try:
                got = np.asarray(fn())
            except Exception as exc:  # noqa: BLE001
                report.divergences.append(
                    Divergence("weighted-stack", name, "crash", -1, "ok",
                               f"{type(exc).__name__}: {exc}")
                )
                return
            diff = _first_diff_vec(w_stack, got)
            if diff is not None:
                idx, va, vb = diff
                report.divergences.append(
                    Divergence("weighted-stack", name, "weighted-distances",
                               idx, va, vb)
                )

        if cfg.check_naive and n <= NAIVE_MAX_N:
            check_stack(
                "weighted-naive",
                lambda: naive_weighted_stack_distances(trace, sizes),
            )
        if n <= TREE_BASELINE_MAX_N:
            check_stack(
                "weighted-ost",
                lambda: ost_weighted_stack_distances(trace, sizes),
            )

    return report


def _check_batch_split(report: OracleReport, case: FuzzCase) -> None:
    """Split the trace into parts; a batched solve must equal per-part solves.

    Each part is an independent trace (a part's first access to an address
    is a cold miss even if the address appeared in an earlier part), so the
    per-part loop — not the whole-trace hub — is the reference here.
    """
    trace, cfg = case.trace, case.config
    name = "iaf-batch-split"
    report.comparisons.append(f"iaf-loop~{name}:distances")
    n = trace.size
    cuts = sorted({0, n // 3, (2 * n) // 3, n})
    parts = [trace[a:b] for a, b in zip(cuts, cuts[1:])] or [trace]
    try:
        batched = iaf_distances_batch(parts, dtype=cfg.numpy_dtype())
        looped = [iaf_distances(p, dtype=cfg.numpy_dtype()) for p in parts]
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        report.divergences.append(
            Divergence("iaf-loop", name, "crash", -1, "ok",
                       f"{type(exc).__name__}: {exc}")
        )
        return
    for i, (got, want) in enumerate(zip(batched, looped)):
        diff = _first_diff_vec(np.asarray(want), np.asarray(got))
        if diff is not None:
            idx, va, vb = diff
            report.divergences.append(
                Divergence("iaf-loop", name, "distances", idx,
                           f"part {i}: {va}", f"part {i}: {vb}")
            )
            return


def _chunked_curve(
    case: FuzzCase, engine_backend: Optional[str] = None
) -> HitRateCurve:
    """The chunked incremental engine through the public solve tier.

    Exercises the ``SolveConfig(algorithm="chunked-iaf")`` dispatch with
    the case's fuzzed chunk size — the result must be bit-identical to
    the batch hub for *every* chunk size (and, with
    ``engine_backend="compiled"``, for the compiled level kernel).
    """
    from ..core.api import solve
    from ..core.config import SolveConfig

    cfg = case.config
    return solve(
        case.trace,
        SolveConfig(
            algorithm="chunked-iaf",
            chunk_size=cfg.chunk_size or None,
            dtype=cfg.numpy_dtype(),
            engine_backend=engine_backend,
        ),
    ).curve


def _process_curve(case: FuzzCase) -> HitRateCurve:
    """The ``process-iaf`` tier (persistent executor pool) end to end."""
    from ..core.api import solve
    from ..core.config import SolveConfig

    cfg = case.config
    return solve(
        case.trace,
        SolveConfig(
            algorithm="process-iaf",
            workers=cfg.process_workers or 2,
            dtype=cfg.numpy_dtype(),
        ),
    ).curve


def _tenant_curve(case: FuzzCase) -> HitRateCurve:
    """An exact-tier tenant fed the case's push plan.

    The registry's ``exact_curve`` guarantee: a never-demoted exact
    tenant's curve is bit-identical to the direct batch solve — the
    multi-tenant layer adds bookkeeping, never error.
    """
    from ..tenants import TenantRegistry

    cfg = case.config
    registry = TenantRegistry()
    registry.register(
        "fuzz", chunk_size=cfg.chunk_size or None, dtype=cfg.numpy_dtype()
    )
    pos = 0
    for step in push_plan_for(case).tolist():
        registry.push("fuzz", case.trace[pos : pos + step])
        pos += step
    snapshot = registry.curve("fuzz")
    assert snapshot.exact_curve is not None  # never demoted: stays exact
    return snapshot.exact_curve


def _check_sampled(
    report: OracleReport, case: FuzzCase, exact: HitRateCurve
) -> None:
    """The streaming sampled tier against the one-shot SHARDS baseline.

    Both paths hash-sample with the case's fuzzed ``(sample_rate,
    sample_seed)`` and funnel through the shared estimator
    (:mod:`repro.core.sampling`), so their float estimates must be
    **bit-identical** — the streamed sub-trace is exactly the batch
    sub-trace, and the chunked engine is exact on it.  At rate 1.0 the
    estimate must additionally equal the exact hub's hit counts.
    """
    from ..baselines.shards import shards_hit_rate_curve
    from ..tenants import TenantRegistry

    cfg = case.config
    name = "sampled-iaf"
    report.comparisons.append(f"shards~{name}:curve")
    try:
        registry = TenantRegistry()
        registry.register(
            "fuzz-sampled", tier="sampled", sample_rate=cfg.sample_rate,
            sample_seed=cfg.sample_seed, chunk_size=cfg.chunk_size or None,
            dtype=cfg.numpy_dtype(),
        )
        pos = 0
        for step in push_plan_for(case).tolist():
            registry.push("fuzz-sampled", case.trace[pos : pos + step])
            pos += step
        streamed = registry.curve("fuzz-sampled").estimate
        oneshot = shards_hit_rate_curve(
            case.trace, cfg.sample_rate, seed=cfg.sample_seed
        )
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        report.divergences.append(
            Divergence("shards", name, "crash", -1, "ok",
                       f"{type(exc).__name__}: {exc}")
        )
        return
    if (
        streamed.total_accesses != oneshot.total_accesses
        or streamed.sampled_accesses != oneshot.sampled_accesses
    ):
        report.divergences.append(Divergence(
            "shards", name, "curve", -1,
            f"total {oneshot.total_accesses}/{oneshot.sampled_accesses}",
            f"total {streamed.total_accesses}/{streamed.sampled_accesses}",
        ))
        return
    a, b = oneshot.hits_estimate, streamed.hits_estimate
    if a.size != b.size:
        report.divergences.append(Divergence(
            "shards", name, "curve", -1,
            f"length {a.size}", f"length {b.size}",
        ))
        return
    if not np.array_equal(a, b):
        idx = int(np.flatnonzero(a != b)[0])
        report.divergences.append(Divergence(
            "shards", name, "curve", idx + 1, str(a[idx]), str(b[idx])
        ))
        return
    if cfg.sample_rate == 1.0:
        # Degenerate rate: the "estimate" must be the exact answer.
        # Lengths may differ by a flat tail (both curves saturate), so
        # pad each with its final value before the bitwise compare.
        report.comparisons.append(f"iaf-curve~{name}:curve")
        want = np.asarray(exact.hits_cumulative, dtype=np.float64)
        kmax = max(want.size, b.size)
        wa, ba = _pad_flat(want, kmax), _pad_flat(b, kmax)
        if not np.array_equal(wa, ba):
            idx = int(np.flatnonzero(wa != ba)[0])
            report.divergences.append(Divergence(
                "iaf-curve", name, "curve", idx + 1,
                str(wa[idx]), str(ba[idx]),
            ))


def _pad_flat(hits: np.ndarray, kmax: int) -> np.ndarray:
    """Extend a cumulative-hits array to ``kmax`` with its flat tail."""
    if hits.size >= kmax:
        return hits[:kmax]
    tail = hits[-1] if hits.size else 0.0
    return np.concatenate([hits, np.full(kmax - hits.size, tail)])


def _streaming_curve(case: FuzzCase) -> HitRateCurve:
    """Feed the trace through the online analyzer in random batches."""
    cfg = case.config
    analyzer = OnlineCurveAnalyzer(
        cfg.k, chunk_multiplier=cfg.chunk_multiplier, dtype=cfg.numpy_dtype()
    )
    pos = 0
    for step in push_plan_for(case).tolist():
        analyzer.push(case.trace[pos : pos + step])
        pos += step
    analyzer.flush()
    return analyzer.curve()


def iter_impl_names(case: FuzzCase) -> Iterator[str]:
    """Names the matrix would exercise for ``case`` (for reporting)."""
    for cmp_ in run_case_detailed(case).comparisons:
        yield cmp_.split("~")[1].split(":")[0]
