"""Sampled-vs-exact accuracy harness: measure the estimator, then gate it.

The sampled tier (:mod:`repro.core.sampling`) is an estimator, and the
package's position — the paper's position — is that estimators must ship
with *measured* error, not folklore.  This harness computes, for each
seeded workload and sampling rate, the absolute hit-rate error between
the SHARDS estimate and the exact IAF curve, evaluated on a fixed size
grid, across several independent sampling seeds.  The pytest gates in
``tests/qa/test_accuracy.py`` then hold the smooth workloads to
``MEAN_BOUND``/``MAX_BOUND`` at R = 0.01 **and** require the adversarial
workload to exceed them — the error really is workload-dependent and
unbounded, which is why the exact tier exists.

Everything here is deterministic: workloads are pure functions of their
committed seeds, the sampling seeds are fixed, and the grid depends only
on the exact curve's size — so the gate numbers in CI are the numbers in
``docs/ACCURACY.md`` (regenerate with ``python scripts/accuracy_report.py``).

The grid starts at ``max_size/points`` rather than 1: at R = 0.01 the
rescaled distances quantize to multiples of ~1/R, so pointwise error at
tiny cache sizes measures quantization, not the estimator.  The *mean*
over the grid still covers the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..core.engine import iaf_hit_rate_curve
from ..core.sampling import sampled_hit_rate_curve
from ..workloads.synthetic import zipfian_trace

#: The CI gate for smooth workloads at the reference rate.
REFERENCE_RATE = 0.01
MEAN_BOUND = 0.02
MAX_BOUND = 0.05
#: Sampling seeds the harness averages over (fixed — the numbers are
#: deterministic, so the gate cannot flake).
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2, 3, 4)
DEFAULT_GRID_POINTS = 64


def _zipf_workload() -> np.ndarray:
    return zipfian_trace(1_000_000, 100_000, 0.8, seed=1)


def _cdn_workload() -> np.ndarray:
    # CDN object popularity is canonically zipf with exponent ~0.9
    # (Breslau et al., INFOCOM '99); larger universe, heavier head.
    return zipfian_trace(1_000_000, 150_000, 0.9, seed=7)


def _scan_workload() -> np.ndarray:
    # Cyclic scan: every reuse distance equals the universe size, so the
    # exact curve is a cliff at k = u.  Sampling quantizes and rescales
    # distances, smearing the cliff's mass across neighbouring sizes —
    # near the cliff the estimate is wrong by O(1), at any rate < 1.
    return np.tile(np.arange(2_000, dtype=np.int64), 100)


@dataclass(frozen=True)
class AccuracyWorkload:
    """One committed workload: a name, a factory, and its smoothness."""

    name: str
    factory: Callable[[], np.ndarray]
    smooth: bool  # smooth workloads are gated; adversarial must fail


WORKLOADS: Tuple[AccuracyWorkload, ...] = (
    AccuracyWorkload("zipf", _zipf_workload, smooth=True),
    AccuracyWorkload("cdn", _cdn_workload, smooth=True),
    AccuracyWorkload("scan", _scan_workload, smooth=False),
)


@dataclass(frozen=True)
class AccuracyRow:
    """Measured error for one (workload, rate): the harness's unit."""

    workload: str
    smooth: bool
    rate: float
    seeds: Tuple[int, ...]
    mean_error: float  # per-seed grid means, averaged over seeds
    max_error: float  # worst pointwise error across all seeds
    sampled_fraction: float  # realized sample size / trace size, averaged
    grid_points: int

    @property
    def within_bounds(self) -> bool:
        return self.mean_error <= MEAN_BOUND and self.max_error <= MAX_BOUND


def size_grid(max_size: int, points: int = DEFAULT_GRID_POINTS) -> np.ndarray:
    """Evaluation sizes: ``points`` cache sizes from max/points to max."""
    if max_size < 1:
        return np.zeros(0, dtype=np.int64)
    return np.unique(
        np.linspace(max(1, max_size // points), max_size, points).astype(
            np.int64
        )
    )


def measure_workload(
    workload: AccuracyWorkload,
    rates: Sequence[float] = (REFERENCE_RATE,),
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    grid_points: int = DEFAULT_GRID_POINTS,
) -> List[AccuracyRow]:
    """Exact-vs-sampled error rows for one workload (one exact solve)."""
    trace = workload.factory()
    exact = iaf_hit_rate_curve(trace)
    grid = size_grid(exact.max_size, grid_points)
    exact_rates = np.array([exact.hit_rate(int(k)) for k in grid])
    rows = []
    for rate in rates:
        means, maxes, fractions = [], [], []
        for seed in seeds:
            approx = sampled_hit_rate_curve(trace, rate, seed=seed)
            est = np.array([approx.hit_rate(int(k)) for k in grid])
            err = np.abs(est - exact_rates)
            means.append(float(err.mean()))
            maxes.append(float(err.max()))
            fractions.append(approx.sampled_accesses / trace.size)
        rows.append(
            AccuracyRow(
                workload=workload.name,
                smooth=workload.smooth,
                rate=float(rate),
                seeds=tuple(int(s) for s in seeds),
                mean_error=float(np.mean(means)),
                max_error=float(np.max(maxes)),
                sampled_fraction=float(np.mean(fractions)),
                grid_points=int(grid.size),
            )
        )
    return rows


def measure(
    workloads: Sequence[AccuracyWorkload] = WORKLOADS,
    rates: Sequence[float] = (REFERENCE_RATE,),
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    grid_points: int = DEFAULT_GRID_POINTS,
) -> List[AccuracyRow]:
    """The full harness: every (workload, rate) row."""
    rows: List[AccuracyRow] = []
    for workload in workloads:
        rows.extend(
            measure_workload(
                workload, rates, seeds=seeds, grid_points=grid_points
            )
        )
    return rows


def markdown_table(rows: Sequence[AccuracyRow]) -> str:
    """The ``docs/ACCURACY.md`` table body for a set of measured rows."""
    lines = [
        "| workload | kind | rate | sampled | mean err | max err | "
        "≤ 2% / 5% gate |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        kind = "smooth" if row.smooth else "adversarial"
        gate = (
            "pass" if row.within_bounds
            else ("**exceeds (by design)**" if not row.smooth
                  else "FAIL")
        )
        lines.append(
            f"| {row.workload} | {kind} | {row.rate:g} | "
            f"{row.sampled_fraction:.2%} | {row.mean_error:.2%} | "
            f"{row.max_error:.2%} | {gate} |"
        )
    return "\n".join(lines)


def rows_by_workload(
    rows: Sequence[AccuracyRow],
) -> Dict[str, List[AccuracyRow]]:
    out: Dict[str, List[AccuracyRow]] = {}
    for row in rows:
        out.setdefault(row.workload, []).append(row)
    return out


__all__ = [
    "AccuracyRow",
    "AccuracyWorkload",
    "DEFAULT_SEEDS",
    "MAX_BOUND",
    "MEAN_BOUND",
    "REFERENCE_RATE",
    "WORKLOADS",
    "markdown_table",
    "measure",
    "measure_workload",
    "rows_by_workload",
    "size_grid",
]
