"""Fault injection for the shared-memory process executor.

The executor's robustness ladder (detect dead worker → respawn → retry
with backoff → degrade to an in-process solve) is worthless if it only
runs on real crashes, so this module makes crashes cheap to stage: a
hook armed via :func:`repro.parallel_exec.set_fault_hook` fires right
after each job is handed to a worker and kills that worker **mid-solve**
with a real signal.  The differential tests in ``tests/exec`` then
assert the recovered results are bit-identical to the single-process
engine — the same oracle discipline as :mod:`repro.qa.oracle`.

Usage::

    with inject_worker_kills(kills=1):
        d = process_parallel_iaf_distances(trace, workers=2)
    # d is exact; the executor respawned and retried under the hood.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from typing import Iterator, Optional

from ..parallel_exec import clear_fault_hook, set_fault_hook

__all__ = ["WorkerKillPlan", "inject_worker_kills"]


class WorkerKillPlan:
    """Kill the dispatch target on the first ``kills`` job handoffs.

    ``kills=None`` kills on *every* handoff — dispatches and retries
    alike — which starves the retry budget and forces the executor all
    the way down to the degrade-to-in-process rung.  ``events`` records
    each strike as ``(worker_index, event)`` for assertions.
    """

    def __init__(self, kills: Optional[int] = 1,
                 sig: int = signal.SIGKILL) -> None:
        self.remaining = kills
        self.sig = sig
        self.events: list = []

    def __call__(self, executor, worker_index: int, event: str) -> None:
        if self.remaining is not None:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        self.events.append((worker_index, event))
        executor.kill_worker(worker_index, self.sig)


@contextmanager
def inject_worker_kills(
    kills: Optional[int] = 1, sig: int = signal.SIGKILL
) -> Iterator[WorkerKillPlan]:
    """Arm a :class:`WorkerKillPlan` for the duration of the block."""
    plan = WorkerKillPlan(kills, sig)
    set_fault_hook(plan)
    try:
        yield plan
    finally:
        clear_fault_hook()
