"""repro.obs — unified observability: span tracing, counters, exporters.

The layer every perf PR builds on (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.span` — :class:`Tracer`/:class:`Span` structured
  timing events in a ring buffer, disabled by default with a no-op fast
  path (the hot paths stay hot).
* :mod:`repro.obs.counters` — :class:`Counters`, one associative/
  commutative ``snapshot()``/``merge()`` registry unifying
  ``EngineStats``, ``IOStats``, and the PRAM ``Cost`` model.
* :mod:`repro.obs.export` — JSON-lines, Chrome ``trace_event``
  (flamegraphs), and per-phase summary tables.
* :mod:`repro.obs.profile` — the ``repro profile`` pipeline (imported
  lazily; it depends on :mod:`repro.core`, which itself imports this
  package).

Quick use::

    from repro import SolveConfig, hit_rate_curve
    from repro.obs import tracing
    from repro.obs.export import summary_table

    with tracing() as tracer:
        hit_rate_curve(trace, SolveConfig(algorithm="parallel-iaf",
                                          workers=4))
    print(summary_table(tracer.events()))
"""

from .counters import MAX, SUM, Counters
from .span import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    validate_span_tree,
)

__all__ = [
    "Counters",
    "DEFAULT_CAPACITY",
    "MAX",
    "NULL_SPAN",
    "SUM",
    "Span",
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "validate_span_tree",
]
