"""A merging counter registry unifying the repo's metric silos.

Before this module, three disconnected accountings existed:
:class:`repro.core.engine.EngineStats` (work/span/peaks),
:class:`repro.extmem.iostats.IOStats` (block transfers), and the PRAM
:class:`repro.pram.scheduler.Cost` (work/span pairs).  Each had its own
merge story — or none, which is how the parallel paths lost
``peak_bytes`` before PR 1.  :class:`Counters` gives all of them one
``snapshot()`` / ``merge()`` surface with exactly two merge kinds:

* ``sum`` — additive quantities (work, ops, block transfers);
* ``max`` — high-water marks and critical paths (peak bytes, span,
  recursion depth).

``merge`` is **associative and commutative** (the property test in
``tests/obs/test_properties.py`` pins this): per-worker and per-chunk
counters can be folded in any order and any grouping, which is what the
thread-pool, process-pool, and streaming paths need.  Note the span
semantics: merging models *parallel* composition (``Cost.beside`` —
spans take the max), the right reading for aggregating concurrent
workers; serial composition is the caller's job.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from ..errors import ObservabilityError

#: Merge kinds.
SUM = "sum"
MAX = "max"
_KINDS = (SUM, MAX)


class Counters:
    """Named numeric counters, each with a fixed merge kind."""

    __slots__ = ("_values", "_kinds")

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}
        self._kinds: Dict[str, str] = {}

    # -- recording ----------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate into a ``sum`` counter."""
        self._bump(name, SUM, value)

    def peak(self, name: str, value: float) -> None:
        """Raise a ``max`` counter (high-water mark)."""
        self._bump(name, MAX, value)

    def _bump(self, name: str, kind: str, value: float) -> None:
        v = float(value)
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            self._values[name] = v
        elif known != kind:
            raise ObservabilityError(
                f"counter {name!r} is {known!r}, cannot record as {kind!r}"
            )
        elif kind == SUM:
            self._values[name] += v
        else:
            self._values[name] = max(self._values[name], v)

    # -- inspection ---------------------------------------------------------

    def kind(self, name: str) -> str:
        """Merge kind of ``name`` (raises if unknown)."""
        try:
            return self._kinds[name]
        except KeyError:
            raise ObservabilityError(f"unknown counter {name!r}") from None

    def value(self, name: str) -> float:
        """Current value of ``name`` (raises if unknown)."""
        try:
            return self._values[name]
        except KeyError:
            raise ObservabilityError(f"unknown counter {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._values)

    def snapshot(self) -> Dict[str, float]:
        """A plain name → value dict (copy; safe to mutate)."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return (self._values == other._values
                and self._kinds == other._kinds)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={self._values[n]:g}[{self._kinds[n]}]"
            for n in self.names()
        )
        return f"Counters({inner})"

    # -- merging ------------------------------------------------------------

    def merge(self, other: "Counters") -> "Counters":
        """A new registry combining both (parallel-composition reading).

        Union of names; ``sum`` counters add, ``max`` counters take the
        max.  Raises when the two registries disagree on a name's kind.
        """
        out = Counters()
        for src in (self, other):
            for name, value in src._values.items():
                out._bump(name, src._kinds[name], value)
        return out

    @staticmethod
    def merge_all(parts: Iterable["Counters"]) -> "Counters":
        """Fold any number of registries (order-independent by the laws)."""
        out = Counters()
        for part in parts:
            out = out.merge(part)
        return out

    # -- adapters for the pre-existing silos --------------------------------

    @classmethod
    def from_engine_stats(cls, stats: Any,
                          prefix: str = "engine") -> "Counters":
        """Counters view of an :class:`~repro.core.engine.EngineStats`.

        Scalars only (``ops_per_level`` stays on the stats object);
        kinds mirror :func:`repro.core.parallel._merge_part_stats`:
        work sums, levels/spans/peaks take the concurrent max.
        """
        c = cls()
        c.add(f"{prefix}.work", stats.work)
        c.peak(f"{prefix}.levels", stats.levels)
        c.peak(f"{prefix}.span_basic", stats.span_basic)
        c.peak(f"{prefix}.span_parallel", stats.span_parallel)
        c.peak(f"{prefix}.peak_level_ops", stats.peak_level_ops)
        c.peak(f"{prefix}.peak_bytes", stats.peak_bytes)
        return c

    @classmethod
    def from_io_stats(cls, stats: Any, prefix: str = "io") -> "Counters":
        """Counters view of an :class:`~repro.extmem.iostats.IOStats`."""
        c = cls()
        c.add(f"{prefix}.read_blocks", stats.read_blocks)
        c.add(f"{prefix}.write_blocks", stats.write_blocks)
        for tag, blocks in stats.by_tag.items():
            c.add(f"{prefix}.tag.{tag}", blocks)
        return c

    @classmethod
    def from_cost(cls, cost: Any, prefix: str = "pram") -> "Counters":
        """Counters view of a PRAM :class:`~repro.pram.scheduler.Cost`.

        ``merge`` then realizes ``Cost.beside``: works add, spans max.
        """
        c = cls()
        c.add(f"{prefix}.work", cost.work)
        c.peak(f"{prefix}.span", cost.span)
        return c

    def as_cost(self, prefix: str = "pram") -> Tuple[float, float]:
        """Back out a ``(work, span)`` pair recorded by :meth:`from_cost`."""
        return (self.value(f"{prefix}.work"), self.value(f"{prefix}.span"))
