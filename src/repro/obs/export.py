"""Exporters: JSON-lines, Chrome ``trace_event``, and summary tables.

Three consumers, three formats:

* **JSONL** — one event per line, for ad-hoc ``jq``/pandas analysis and
  for log shipping (the SHARDS-style continuous-monitoring story).
* **Chrome trace_event** — the ``chrome://tracing`` / Perfetto format
  (``ph: "X"`` complete events, microsecond timestamps), for flamegraph
  viewing of a run: one row per thread, per-level engine spans nested
  under the pipeline phases.
* **Summary table** — the per-phase breakdown printed by
  ``repro profile`` / ``analyze --profile``, grouped by span name.

All exporters take a list of :class:`~repro.obs.span.SpanEvent` (from
``tracer.events()``) so they compose with any tracer, including replays.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional, Sequence, Union

from .span import SpanEvent

PathLike = Union[str, "os.PathLike[str]"]


def _jsonable(value: Any) -> Any:
    """Coerce attr values to JSON-safe types (numpy scalars included)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    return str(value)


def _event_dict(event: SpanEvent, epoch: float) -> Dict[str, Any]:
    return {
        "name": event.name,
        "span_id": event.span_id,
        "parent_id": event.parent_id,
        "tid": event.thread_id,
        "depth": event.depth,
        "start_s": round(event.start - epoch, 9),
        "wall_s": round(event.wall, 9),
        "cpu_s": round(event.cpu, 9),
        "attrs": {k: _jsonable(v) for k, v in event.attrs.items()},
    }


def _epoch(events: Sequence[SpanEvent]) -> float:
    return min((e.start for e in events), default=0.0)


def to_jsonl(events: Sequence[SpanEvent]) -> str:
    """One JSON object per line; timestamps rebased to the first event."""
    epoch = _epoch(events)
    return "\n".join(
        json.dumps(_event_dict(e, epoch), sort_keys=True) for e in events
    )


def write_jsonl(events: Sequence[SpanEvent], out: Union[PathLike, IO[str]]) -> None:
    """Write :func:`to_jsonl` output to a path or text stream."""
    text = to_jsonl(events)
    if text:
        text += "\n"
    if hasattr(out, "write"):
        out.write(text)  # type: ignore[union-attr]
    else:
        with open(out, "w") as fh:  # type: ignore[arg-type]
            fh.write(text)


def to_chrome_trace(events: Sequence[SpanEvent]) -> Dict[str, Any]:
    """The ``chrome://tracing`` JSON object (``traceEvents`` list).

    Every span becomes a complete event (``ph: "X"``) with microsecond
    ``ts``/``dur``; thread CPU time rides in ``args.cpu_us`` so Perfetto
    can show GIL-bound workers (wall ≫ cpu).
    """
    epoch = _epoch(events)
    pid = os.getpid()
    trace_events: List[Dict[str, Any]] = []
    for e in events:
        trace_events.append({
            "name": e.name,
            "cat": "repro",
            "ph": "X",
            "ts": (e.start - epoch) * 1e6,
            "dur": e.wall * 1e6,
            "pid": pid,
            "tid": e.thread_id,
            "args": {
                **{k: _jsonable(v) for k, v in e.attrs.items()},
                "cpu_us": e.cpu * 1e6,
                "span_id": e.span_id,
                "parent_id": e.parent_id,
            },
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_json(events: Sequence[SpanEvent]) -> str:
    """:func:`to_chrome_trace` serialized to a JSON string."""
    return json.dumps(to_chrome_trace(events))


def write_chrome_trace(events: Sequence[SpanEvent],
                       out: Union[PathLike, IO[str]]) -> None:
    """Write the Chrome trace JSON to a path or text stream."""
    text = chrome_trace_json(events)
    if hasattr(out, "write"):
        out.write(text)  # type: ignore[union-attr]
    else:
        with open(out, "w") as fh:  # type: ignore[arg-type]
            fh.write(text)


def totals_by_name(events: Sequence[SpanEvent]) -> Dict[str, float]:
    """Total wall seconds per span name (inclusive of children)."""
    totals: Dict[str, float] = {}
    for e in events:
        totals[e.name] = totals.get(e.name, 0.0) + e.wall
    return totals


def summary_rows(events: Sequence[SpanEvent]) -> List[List[object]]:
    """Per-name aggregate rows: count, total/mean wall, total cpu.

    Sorted by total wall time, descending — the profile's hot list.
    Wall times are inclusive (a parent's total contains its children),
    which is why the table also prints each name's tree depth range.
    """
    agg: Dict[str, Dict[str, float]] = {}
    for e in events:
        a = agg.setdefault(e.name, {
            "count": 0, "wall": 0.0, "cpu": 0.0,
            "min_depth": e.depth, "max_depth": e.depth,
        })
        a["count"] += 1
        a["wall"] += e.wall
        a["cpu"] += e.cpu
        a["min_depth"] = min(a["min_depth"], e.depth)
        a["max_depth"] = max(a["max_depth"], e.depth)
    rows: List[List[object]] = []
    for name, a in sorted(agg.items(), key=lambda kv: -kv[1]["wall"]):
        depth = (str(int(a["min_depth"]))
                 if a["min_depth"] == a["max_depth"]
                 else f"{int(a['min_depth'])}-{int(a['max_depth'])}")
        rows.append([
            name,
            int(a["count"]),
            f"{a['wall'] * 1e3:.2f}",
            f"{a['wall'] / a['count'] * 1e3:.3f}",
            f"{a['cpu'] * 1e3:.2f}",
            depth,
        ])
    return rows


def summary_table(events: Sequence[SpanEvent], *,
                  title: str = "span summary",
                  note: Optional[str] = None) -> str:
    """Rendered per-phase summary (same table style as the benchmarks)."""
    # Local import: analysis.report pulls in the analysis package, which
    # imports core — and core's modules import repro.obs at load time.
    from ..analysis.report import render_table

    return render_table(
        title,
        ["span", "count", "total ms", "mean ms", "cpu ms", "depth"],
        summary_rows(events),
        note=note,
    )


def counters_table(counters: Any, *, title: str = "counters") -> str:
    """Rendered view of a :class:`~repro.obs.counters.Counters` snapshot."""
    from ..analysis.report import render_table

    rows = [
        [name, f"{counters.value(name):,.6g}", counters.kind(name)]
        for name in counters.names()
    ]
    return render_table(title, ["counter", "value", "merge"], rows)
