"""Span tracing: structured timing events from the hot paths.

A :class:`Span` is one timed region (a recursion level, a worker's
subtree, a streamed chunk, an external-memory node).  Entering a span
pushes it on a per-thread stack — so spans form a tree per thread — and
exiting records a :class:`SpanEvent` carrying wall time, thread CPU
time, and free-form attributes (segment depth, op counts, worker ids,
IO block counts) into the tracer's ring buffer.

Two properties make this safe to leave compiled into production code:

* **No-op fast path.**  The default tracer is disabled; ``span()`` then
  returns a shared :data:`NULL_SPAN` whose enter/exit do nothing.  The
  instrumented call sites fire O(log n) times per run (per level, per
  chunk, per worker — never per access), so the disabled overhead is a
  few hundred nanoseconds against seconds of numpy work; the bound is
  asserted by ``tests/obs/test_overhead.py`` and measured by
  ``benchmarks/bench_obs_overhead.py``.
* **Bounded memory.**  Events live in a ``deque(maxlen=capacity)``:
  long-running monitors (the Section-1 deployment story) keep the most
  recent ``capacity`` events and count the rest in ``dropped``.

The current tracer is a module global (``get_tracer``/``set_tracer``);
:func:`tracing` is the scoped way to turn collection on::

    from repro.obs import tracing
    with tracing() as tracer:
        hit_rate_curve(trace)
    print(summary_table(tracer.events()))
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..errors import ObservabilityError

#: Default ring-buffer capacity (events, not bytes).
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class SpanEvent:
    """One completed span.

    ``start`` is an absolute ``time.perf_counter()`` reading; exporters
    rebase it against the earliest event.  ``parent_id == -1`` marks a
    root span of its thread; ``depth`` is the nesting depth within the
    thread (roots are 0).  ``cpu`` is thread CPU seconds
    (``time.thread_time()``), so a worker blocked on the GIL shows
    wall >> cpu.
    """

    name: str
    span_id: int
    parent_id: int
    thread_id: int
    depth: int
    start: float
    wall: float
    cpu: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.wall


class _NullSpan:
    """The shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: Singleton no-op span; safe to reuse from any thread (it has no state).
NULL_SPAN = _NullSpan()


class Span:
    """An open span; use as a context manager (or via :meth:`Tracer.span`).

    ``set(**attrs)`` attaches attributes discovered mid-region (e.g. IO
    blocks charged while the span was open).
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "depth", "_start", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id = -1
        self.depth = 0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self.span_id = next(self._tracer._ids)
        stack.append(self)
        self._cpu0 = time.thread_time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        wall = time.perf_counter() - self._start
        cpu = time.thread_time() - self._cpu0
        stack = self._tracer._stack()
        if not stack or stack[-1] is not self:
            raise ObservabilityError(
                f"span {self.name!r} exited out of order — spans must "
                f"nest (use `with tracer.span(...)`)"
            )
        stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", getattr(exc_type, "__name__",
                                                   str(exc_type)))
        self._tracer._record(SpanEvent(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            thread_id=threading.get_ident(),
            depth=self.depth,
            start=self._start,
            wall=wall,
            cpu=cpu,
            attrs=self.attrs,
        ))
        return False


class Tracer:
    """Collects span events into a bounded ring buffer.

    Thread-safe by construction: the span stack is thread-local and
    ``deque.append`` is atomic under the GIL, so worker threads record
    concurrently without locks.
    """

    def __init__(self, *, enabled: bool = False,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"tracer capacity must be >= 1, got {capacity}"
            )
        self.enabled = bool(enabled)
        self._capacity = int(capacity)
        self._events: "deque[SpanEvent]" = deque(maxlen=self._capacity)
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self.dropped = 0

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span (context manager).  No-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _record(self, event: SpanEvent) -> None:
        if len(self._events) == self._capacity:
            self.dropped += 1
        self._events.append(event)

    # -- inspection ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[SpanEvent]:
        """Snapshot of buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Discard all buffered events (open spans are unaffected)."""
        self._events.clear()
        self.dropped = 0

    def drain(self) -> List[SpanEvent]:
        """Return all buffered events and clear the buffer."""
        events = self.events()
        self.clear()
        return events


#: The process-wide current tracer.  Disabled by default: every
#: instrumented call site stays on the no-op fast path.
_current = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The current tracer (disabled unless :func:`tracing` is active)."""
    return _current


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as current; returns the previous one."""
    global _current
    if not isinstance(tracer, Tracer):
        raise ObservabilityError(
            f"set_tracer needs a Tracer, got {type(tracer).__name__}"
        )
    previous = _current
    _current = tracer
    return previous


@contextmanager
def tracing(*, capacity: int = DEFAULT_CAPACITY,
            tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scoped collection: install an enabled tracer, restore on exit.

    Yields the tracer so callers can read ``tracer.events()`` afterwards
    (the buffer survives the context exit — only the *installation* is
    scoped).
    """
    t = tracer if tracer is not None else Tracer(enabled=True,
                                                 capacity=capacity)
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


def validate_span_tree(events: List[SpanEvent], *,
                       allow_missing_parents: bool = False) -> None:
    """Check that ``events`` form a valid span forest; raise otherwise.

    Per thread: span ids are unique, every non-root's parent exists (and
    lives on the same thread), depth is parent depth + 1, and a child's
    ``[start, end]`` interval lies within its parent's (up to float
    jitter).  ``allow_missing_parents`` relaxes the existence check for
    buffers that overflowed (the ring drops oldest events first).
    """
    by_id: Dict[int, SpanEvent] = {}
    for e in events:
        if e.span_id in by_id:
            raise ObservabilityError(f"duplicate span id {e.span_id}")
        by_id[e.span_id] = e
    eps = 1e-6
    for e in events:
        if e.parent_id == -1:
            if e.depth != 0:
                raise ObservabilityError(
                    f"root span {e.name!r} has depth {e.depth}"
                )
            continue
        parent = by_id.get(e.parent_id)
        if parent is None:
            if allow_missing_parents:
                continue
            raise ObservabilityError(
                f"span {e.name!r} references missing parent {e.parent_id}"
            )
        if parent.thread_id != e.thread_id:
            raise ObservabilityError(
                f"span {e.name!r} crosses threads to its parent"
            )
        if e.depth != parent.depth + 1:
            raise ObservabilityError(
                f"span {e.name!r} depth {e.depth} != parent depth "
                f"{parent.depth} + 1"
            )
        if e.start < parent.start - eps or e.end > parent.end + eps:
            raise ObservabilityError(
                f"span {e.name!r} [{e.start}, {e.end}] escapes parent "
                f"{parent.name!r} [{parent.start}, {parent.end}]"
            )
