"""One-shot profiling pipeline: trace one analysis run end to end.

This is the library face of the ``repro profile`` CLI subcommand: run
any :func:`repro.hit_rate_curve` algorithm under a fresh enabled tracer,
wrap the whole run in a ``profile.run`` root span, and return the curve
together with the collected events, wall time, and a unified
:class:`~repro.obs.counters.Counters` snapshot (engine stats folded in
when the algorithm exposes them).

The root span is the reconciliation anchor: its duration must agree with
``wall_seconds`` (both measure the same region), and every other span of
the run nests under it — which is what makes the exported Chrome trace's
totals meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from .counters import Counters
from .span import DEFAULT_CAPACITY, SpanEvent, Tracer, tracing


@dataclass
class ProfileResult:
    """Everything one profiled run produced."""

    curve: Any
    algorithm: str
    n: int
    wall_seconds: float
    events: List[SpanEvent] = field(repr=False)
    counters: Counters = field(repr=False)
    dropped_events: int = 0

    def root_events(self) -> List[SpanEvent]:
        """Spans with no parent (one per thread that opened spans)."""
        return [e for e in self.events if e.parent_id == -1]

    def root_wall_seconds(self) -> float:
        """Duration of the ``profile.run`` root span."""
        for e in self.events:
            if e.name == "profile.run":
                return e.wall
        return 0.0


def profile_hit_rate_curve(
    trace: "np.typing.ArrayLike",
    *,
    algorithm: str = "iaf",
    max_cache_size: Optional[int] = None,
    workers: int = 1,
    dtype: "np.typing.DTypeLike" = None,
    capacity: int = DEFAULT_CAPACITY,
    tracer: Optional[Tracer] = None,
) -> ProfileResult:
    """Run one algorithm with tracing on; return curve + observability.

    A caller-supplied ``tracer`` lets long-lived monitors accumulate
    several runs into one buffer; by default each call gets a fresh
    ring of ``capacity`` events.
    """
    # Local imports: core modules import repro.obs at load time.
    from .._typing import DEFAULT_DTYPE
    from ..core.api import solve
    from ..core.config import SolveConfig
    from ..core.engine import EngineStats

    dt = DEFAULT_DTYPE if dtype is None else dtype
    arr = np.asarray(trace)
    stats = EngineStats()
    config = SolveConfig(
        algorithm=algorithm, max_cache_size=max_cache_size,
        workers=workers, dtype=dt,
    )
    with tracing(capacity=capacity, tracer=tracer) as t:
        t0 = time.perf_counter()
        with t.span("profile.run", algorithm=algorithm, n=int(arr.size),
                    workers=workers):
            curve = solve(arr, config, stats=stats).curve
        wall = time.perf_counter() - t0
    counters = Counters()
    counters.add("profile.wall_seconds", wall)
    counters.add("profile.spans", len(t))
    counters.peak("profile.dropped_spans", t.dropped)
    if stats.levels:  # the engine ran (iaf / bounded-iaf / parallel-iaf)
        counters = counters.merge(Counters.from_engine_stats(stats))
    return ProfileResult(
        curve=curve,
        algorithm=algorithm,
        n=int(arr.size),
        wall_seconds=wall,
        events=t.events(),
        counters=counters,
        dropped_events=t.dropped,
    )
