"""``CurveClient`` — the one supported way to talk to a curve server.

Every earlier caller of the wire protocol (soak scripts, server tests,
ad-hoc probes) hand-rolled a socket, its line framing, and its response
correlation.  This module replaces all of that with a small client that
speaks to a single :func:`~repro.service.server.serve_tcp` server or to
a cluster frontend (:mod:`repro.cluster`) identically::

    from repro.client import CurveClient

    with CurveClient(host, port) as client:
        answer = client.solve([1, 2, 1, 3, 1], sizes=[64, 4096])
        print(answer["hit_rates"])

        client.register("web", tier="sampled", sample_rate=0.01)
        client.push("web", trace_array)          # binary bulk upload
        curve = client.curve("web", sizes=[1024])

On connect the client sends the ``{"op": "hello"}`` handshake
(:mod:`repro.service.schema`): the server advertises its protocol
versions and, when both sides support it, the connection upgrades in
place to the v2 binary framed protocol — bulk traces then ship as raw
little-endian bytes (:mod:`repro.service.frames`) instead of JSON text.
``prefer_binary=False`` pins the v1 JSON line protocol.

Request fields are validated against the same declarative schema the
server parses with, so a typo fails fast client-side with the allowed
vocabulary named.  Server-side failures raise
:class:`~repro.errors.RemoteError` (pass ``check=False`` to get the raw
``ok: false`` payload instead).  One client drives one connection and
is **not** thread-safe; open one client per thread.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from .errors import ProtocolError, RemoteError, ReproError
from .service import frames, schema

Trace = Union[str, Sequence[int], np.ndarray]

#: Solve keywords accepted by :meth:`CurveClient.solve` — the schema's
#: request vocabulary minus the positionals (trace) and bookkeeping (id).
_SOLVE_KWARGS = frozenset(schema.REQUEST_FIELDS - {"trace", "id"})


def _dtype_name(dtype: Any) -> str:
    if isinstance(dtype, str):
        name = dtype
    else:
        name = np.dtype(dtype).name
    if name not in schema.DTYPES:
        raise ReproError(
            f"bad dtype {dtype!r}; use one of {sorted(schema.DTYPES)}"
        )
    return name


class CurveClient:
    """One connection to a curve server (single service or ring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        prefer_binary: bool = True,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self._address = (host, int(port))
        self._timeout = timeout
        self._seq = 0
        self._lock = threading.Lock()
        self._sock = socket.create_connection(self._address,
                                              timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._binary = False
        #: The server's hello advertisement (protocols, algorithms,
        #: backend availability, ``server`` kind, shard count).
        self.server_info: Dict[str, Any] = {}
        try:
            self._handshake(prefer_binary)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    @property
    def binary(self) -> bool:
        """True when this connection upgraded to the v2 framed protocol."""
        return self._binary

    def close(self) -> None:
        for closer in (self._wfile.close, self._rfile.close,
                       self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - teardown noise
                pass

    def __enter__(self) -> "CurveClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- wire primitives ---------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"c{self._seq}"

    def _handshake(self, prefer_binary: bool) -> None:
        req = {"op": schema.HELLO_OP, "id": self._next_id()}
        if prefer_binary:
            req["upgrade"] = True
        self._write_json(req)
        payload = self._read_json()
        if not payload.get("ok"):
            raise RemoteError(payload)
        self.server_info = payload
        if payload.get("upgraded") == schema.PROTOCOL_V2:
            self._binary = True

    def _write_json(self, obj: Dict[str, Any]) -> None:
        self._wfile.write(json.dumps(obj).encode("utf-8") + b"\n")
        self._wfile.flush()

    def _read_json(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        try:
            obj = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"bad response line: {exc}") from None
        if not isinstance(obj, dict):
            raise ProtocolError("response line is not a JSON object")
        return obj

    def _send(self, header: Dict[str, Any],
              payload: Optional[np.ndarray] = None) -> None:
        """One request out, on whichever protocol this connection speaks."""
        if self._binary:
            dtype_code = frames.DTYPE_NONE
            raw: bytes = b""
            if payload is not None:
                name = payload.dtype.name
                dtype_code = frames.CODE_BY_NAME[name]
                raw = payload.tobytes()
            frames.write_frame(self._wfile, frames.FRAME_REQUEST, header,
                               raw, dtype_code)
            return
        if payload is not None:
            header = dict(header)
            header["trace"] = payload.tolist()
        self._write_json(header)

    def _recv(self) -> Dict[str, Any]:
        if self._binary:
            got = frames.read_frame(self._rfile)
            if got is None:
                raise ProtocolError("server closed the connection")
            _frame_type, header, _payload = got
            return header
        return self._read_json()

    def _finish(self, payload: Dict[str, Any],
                check: bool) -> Dict[str, Any]:
        if check and not payload.get("ok"):
            raise RemoteError(payload)
        return payload

    def _roundtrip(self, header: Dict[str, Any],
                   payload: Optional[np.ndarray],
                   check: bool) -> Dict[str, Any]:
        with self._lock:
            self._send(header, payload)
            return self._finish(self._recv(), check)

    @staticmethod
    def _split_trace(trace: Trace) -> Any:
        """``(header_trace, payload_array)`` — exactly one is non-None."""
        if isinstance(trace, str):
            return trace, None
        arr = np.asarray(trace)
        if arr.dtype.name not in schema.DTYPES:
            arr = arr.astype(np.int64)
        return None, arr

    # -- solves ------------------------------------------------------------

    def _solve_header(self, req_id: str, sizes: Optional[Sequence[int]],
                      kwargs: Dict[str, Any]) -> Dict[str, Any]:
        unknown = set(kwargs) - _SOLVE_KWARGS
        if unknown:
            raise ReproError(
                f"unknown solve keyword(s) {sorted(unknown)}; "
                f"allowed: {sorted(_SOLVE_KWARGS)}"
            )
        header: Dict[str, Any] = {"id": req_id}
        header.update(kwargs)
        if "dtype" in header:
            header["dtype"] = _dtype_name(header["dtype"])
        if sizes is not None:
            header["sizes"] = [int(s) for s in sizes]
        return header

    def solve(self, trace: Trace, *, sizes: Optional[Sequence[int]] = None,
              check: bool = True, **kwargs: Any) -> Dict[str, Any]:
        """Solve one trace (path string, list, or ndarray).

        Keywords are the wire schema: ``algorithm``, ``max_cache_size``,
        ``workers``, ``engine_backend``, ``chunk_size``, ``dtype``,
        ``deadline``.  Returns the response payload (``hit_rates`` maps
        stringified sizes to floats, matching the wire format).
        """
        header = self._solve_header(self._next_id(), sizes, kwargs)
        header_trace, payload = self._split_trace(trace)
        if header_trace is not None:
            header["trace"] = header_trace
        return self._roundtrip(header, payload, check)

    def solve_batch(self, traces: Sequence[Trace], *,
                    sizes: Optional[Sequence[int]] = None,
                    check: bool = True,
                    **kwargs: Any) -> List[Dict[str, Any]]:
        """Pipeline many solves on one connection.

        All requests go out before any response is read, so the server
        coalesces compatible ones into batched engine solves; responses
        arrive in completion order and are returned re-matched to the
        request order.
        """
        with self._lock:
            ids: List[str] = []
            for trace in traces:
                header = self._solve_header(self._next_id(), sizes,
                                            dict(kwargs))
                header_trace, payload = self._split_trace(trace)
                if header_trace is not None:
                    header["trace"] = header_trace
                ids.append(header["id"])
                self._send(header, payload)
            by_id: Dict[Optional[str], Dict[str, Any]] = {}
            for _ in ids:
                payload_obj = self._recv()
                by_id[payload_obj.get("id")] = payload_obj
        missing = [i for i in ids if i not in by_id]
        if missing:
            raise ProtocolError(
                f"server answered {len(by_id)} requests but ids "
                f"{missing} are missing"
            )
        return [self._finish(by_id[i], check) for i in ids]

    # -- tenant verbs ------------------------------------------------------

    def register(self, tenant: str, *, check: bool = True,
                 **kwargs: Any) -> Dict[str, Any]:
        """Register a tenant (``tier``, ``sample_rate``, budgets, ...)."""
        allowed = schema.TENANT_OP_FIELDS["register"] - {"op", "id",
                                                         "tenant"}
        unknown = set(kwargs) - allowed
        if unknown:
            raise ReproError(
                f"unknown register keyword(s) {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        header = {"op": "register", "id": self._next_id(),
                  "tenant": tenant}
        header.update(kwargs)
        return self._roundtrip(header, None, check)

    def push(self, tenant: str, trace: Trace, *,
             deadline: Optional[float] = None,
             check: bool = True) -> Dict[str, Any]:
        """Stream accesses into a tenant (binary payload when upgraded)."""
        header: Dict[str, Any] = {"op": "push", "id": self._next_id(),
                                  "tenant": tenant}
        if deadline is not None:
            header["deadline"] = deadline
        header_trace, payload = self._split_trace(trace)
        if header_trace is not None:
            header["trace"] = header_trace
        return self._roundtrip(header, payload, check)

    def curve(self, tenant: str, *,
              sizes: Optional[Sequence[int]] = None,
              deadline: Optional[float] = None,
              check: bool = True) -> Dict[str, Any]:
        """A tenant's current curve snapshot."""
        header: Dict[str, Any] = {"op": "curve", "id": self._next_id(),
                                  "tenant": tenant}
        if sizes is not None:
            header["sizes"] = [int(s) for s in sizes]
        if deadline is not None:
            header["deadline"] = deadline
        return self._roundtrip(header, None, check)

    def evict(self, tenant: str, *, check: bool = True) -> Dict[str, Any]:
        """Drop a tenant's state."""
        return self._roundtrip(
            {"op": "evict", "id": self._next_id(), "tenant": tenant},
            None, check,
        )

    def tenants(self, *, check: bool = True) -> Dict[str, Any]:
        """Describe every registered tenant."""
        return self._roundtrip(
            {"op": "tenants", "id": self._next_id()}, None, check,
        )

    def hello(self, *, check: bool = True) -> Dict[str, Any]:
        """Re-query the server's advertisement (no transport change)."""
        return self._roundtrip(
            {"op": schema.HELLO_OP, "id": self._next_id()}, None, check,
        )


__all__ = ["CurveClient"]
