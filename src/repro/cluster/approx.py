"""Closed-form LRU approximation for degraded cluster answers.

When every shard that could answer a solve is down, the frontend can
still say *something*: Berthet's survey (PAPERS.md) recalls the
Fagin / working-set closed form for LRU under the independent reference
model.  With per-address reference probabilities ``p_i`` estimated from
the trace itself, the expected working-set size after ``t`` distinct
references and the hit rate at that instant are

    k(t) = sum_i (1 - (1 - p_i)^t)          (expected cache fill)
    h(t) = sum_i p_i * (1 - (1 - p_i)^t)    (hit probability)

and the LRU miss-rate curve is obtained parametrically: cache size
``k(t)`` achieves hit rate ``h(t)``.  This is exact for IRM traffic in
the large-system limit and a well-behaved approximation elsewhere —
good enough for a capacity answer that is *flagged as degraded*, never
silently substituted for the exact IAF solve.

The whole computation is a few vectorized passes over the distinct
addresses (chunked so a million-address trace doesn't allocate a
``u x 64`` temporary), microseconds-to-milliseconds where the exact
solve would need a live shard.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

#: Parametric resolution of the k(t) -> h(t) curve.
_T_POINTS = 64
#: Distinct addresses folded per vectorized chunk.
_CHUNK = 8192


def fagin_curve(
    trace: np.ndarray, sizes: Sequence[int]
) -> Dict[str, float]:
    """Approximate LRU hit rates at ``sizes`` for ``trace``.

    Returns the wire-format mapping (stringified size -> hit rate).
    """
    arr = np.asarray(trace).ravel()
    n = int(arr.size)
    if n == 0:
        return {str(int(s)): 0.0 for s in sizes}
    _, counts = np.unique(arr, return_counts=True)
    p = counts.astype(np.float64) / n
    u = p.size
    # Evaluate the parametric curve on a geometric t-grid: cache fill
    # saturates exponentially, so log-spaced instants cover the whole
    # sweep from cold cache to full working set.
    t = np.geomspace(1.0, max(float(n), 2.0), _T_POINTS)
    k = np.zeros(_T_POINTS)
    h = np.zeros(_T_POINTS)
    for lo in range(0, u, _CHUNK):
        q = p[lo:lo + _CHUNK, None]          # (chunk, 1)
        fill = 1.0 - (1.0 - q) ** t[None, :]  # (chunk, T)
        k += fill.sum(axis=0)
        h += (q * fill).sum(axis=0)
    # k is increasing in t by construction; interpolate size -> hit rate
    # and clamp outside the observed fill range.
    out: Dict[str, float] = {}
    req = np.asarray([float(s) for s in sizes])
    vals = np.interp(req, k, h, left=0.0, right=float(h[-1]))
    for s, v in zip(sizes, vals):
        out[str(int(s))] = float(min(max(v, 0.0), 1.0))
    return out


def degraded_solve_payload(
    req_id: Optional[str],
    trace: Optional[np.ndarray],
    sizes: Sequence[int],
    *,
    reason: str,
) -> Dict[str, Any]:
    """A flagged approximate answer for a solve no shard could run.

    Mirrors the exact-solve response shape (``ok``, ``hit_rates``,
    ``total_accesses``) and adds the degradation markers the
    acceptance criteria call for: ``degraded``, ``approximate``, the
    ``method``, and why (``reason``).  Without a trace (path-only
    requests — the frontend never reads shard-local files) the answer
    still arrives, with an empty curve.
    """
    payload: Dict[str, Any] = {
        "id": req_id,
        "ok": True,
        "degraded": True,
        "approximate": True,
        "method": "fagin-working-set",
        "reason": reason,
        "algorithm": "analytic-fagin",
        "total_accesses": 0 if trace is None else int(np.asarray(trace).size),
        "batched": False,
    }
    if trace is not None and len(list(sizes)):
        payload["hit_rates"] = fagin_curve(trace, sizes)
    elif len(list(sizes)):
        payload["hit_rates"] = {str(int(s)): 0.0 for s in sizes}
    return payload


__all__ = ["degraded_solve_payload", "fagin_curve"]
