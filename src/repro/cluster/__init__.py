"""repro.cluster — consistent-hash scale-out for the curve service.

"Every cache, everywhere, all of the time" at fleet scale: N
``repro serve`` shard processes behind one asyncio frontend that
routes by consistent hash (:mod:`repro.cluster.ring`), fails over with
bounded retry when a shard dies, degrades to flagged closed-form
approximate answers (:mod:`repro.cluster.approx`) when nothing is
live, and heals via hello heartbeats.  Clients connect to the
frontend with :class:`repro.client.CurveClient` exactly as they would
to a single server — both the v1 JSON line protocol and the
hello-negotiated v2 binary framed protocol pass through.

Entry points: :func:`spawn_ring` (and ``repro serve --cluster N``)
for the whole ring in one call; :class:`ClusterFrontend` to route
across externally managed shards.  See docs/CLUSTER.md.
"""

from .approx import degraded_solve_payload, fagin_curve
from .frontend import ClusterFrontend
from .ring import HashRing
from .spawn import ClusterHandle, ShardProcess, spawn_ring

__all__ = [
    "ClusterFrontend",
    "ClusterHandle",
    "HashRing",
    "ShardProcess",
    "degraded_solve_payload",
    "fagin_curve",
    "spawn_ring",
]
