"""The asyncio cluster frontend: one address, N curve shards behind it.

Clients connect here exactly as they would to a single
:func:`~repro.service.server.serve_tcp` server — same hello handshake,
same v1 JSON lines, same v2 binary frames — and the frontend routes
each request to a shard by consistent hash
(:class:`~repro.cluster.ring.HashRing`).  Shard-side it always speaks
the binary framed protocol over a small pool of exclusive-checkout
connections per shard (one outstanding request per connection, so the
next frame read *is* that request's response).

Fail-over ladder, in order:

1. **Re-route** — a connect/forward failure marks the shard down and
   retries the next distinct live shard in ring order (bounded by the
   ring size).  Tenant requests re-play the tenant's ``register`` on
   the new shard first, so pushes keep landing (the re-homed tenant
   restarts cold; responses carry ``"rerouted": true`` to say so).
2. **Degrade** — with no live shard left, solves are still answered
   locally with the closed-form Fagin/working-set LRU approximation
   (:mod:`repro.cluster.approx`), flagged ``"degraded": true``; tenant
   verbs (which need shard state) degrade to a flagged error.
3. **Recover** — a heartbeat task keeps probing *down* shards with the
   hello handshake and marks them live again on success, restoring
   their exact key ranges.

Every response gains a ``"shard"`` field naming who answered (or
``null`` when degraded) so clients and soaks can audit placement.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ProtocolError, ReproError
from ..obs import Counters
from ..service import frames, schema
from .approx import degraded_solve_payload
from .ring import HashRing

#: Idle pooled connections kept per shard.
_POOL_SIZE = 4
_CONNECT_TIMEOUT = 3.0
_HELLO_TIMEOUT = 5.0
#: asyncio stream limit: a v1 client may legally ship a whole trace as
#: one inline-JSON line, so the default 64KiB ``readline`` cap would
#: sever any bulk v1 request at the frontend.
_STREAM_LIMIT = 1 << 30


class _ShardPool:
    """Exclusive-checkout binary connections to one shard."""

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self._free: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    async def acquire(self) -> Tuple[asyncio.StreamReader,
                                     asyncio.StreamWriter]:
        while self._free:
            reader, writer = self._free.pop()
            if writer.is_closing():
                continue
            return reader, writer
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port,
                                    limit=_STREAM_LIMIT),
            _CONNECT_TIMEOUT,
        )
        try:
            writer.write(json.dumps(
                {"op": schema.HELLO_OP, "upgrade": True}
            ).encode("utf-8") + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), _HELLO_TIMEOUT)
            hello = json.loads(line.decode("utf-8"))
            if hello.get("upgraded") != schema.PROTOCOL_V2:
                raise ProtocolError(
                    f"shard {self.name} refused the binary upgrade"
                )
        except BaseException:
            writer.close()
            raise
        return reader, writer

    def release(self, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        if len(self._free) < _POOL_SIZE and not writer.is_closing():
            self._free.append((reader, writer))
        else:
            writer.close()

    def discard_all(self) -> None:
        while self._free:
            _reader, writer = self._free.pop()
            writer.close()


async def _read_frame_async(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[int, int, Dict[str, Any], bytes]]:
    """One frame off an asyncio stream; None on clean EOF.

    Returns ``(frame_type, dtype_code, header_obj, payload_bytes)``;
    the payload stays raw bytes — the frontend forwards, it does not
    interpret.
    """
    try:
        raw = await reader.readexactly(frames.HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame header "
            f"({len(exc.partial)}/{frames.HEADER_SIZE} bytes)"
        ) from None
    frame_type, dtype_code, header_len, payload_len = (
        frames.unpack_fixed_header(raw)
    )
    try:
        head_raw = await reader.readexactly(header_len)
        payload = (await reader.readexactly(payload_len)
                   if payload_len else b"")
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame (wanted {header_len} header "
            f"+ {payload_len} payload bytes, got {len(exc.partial)})"
        ) from None
    try:
        header = json.loads(head_raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame JSON header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame JSON header must be an object")
    return frame_type, dtype_code, header, payload


class ClusterFrontend:
    """Route curve requests across shards with health-checked fail-over.

    ``shards`` maps shard name to ``(host, port)`` of a running
    ``repro serve`` process.  :meth:`start_in_thread` runs the event
    loop on a daemon thread and returns the bound address — the mode
    the CLI and tests use; :meth:`serve` is the raw coroutine.
    """

    def __init__(
        self,
        shards: Dict[str, Tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        heartbeat_interval: float = 0.5,
    ) -> None:
        if not shards:
            raise ValueError("cluster needs at least one shard")
        self._shards = dict(shards)
        self._ring = HashRing(sorted(self._shards), replicas=replicas)
        self._host = host
        self._port = port
        self._heartbeat_interval = heartbeat_interval
        self._pools = {
            name: _ShardPool(name, h, p)
            for name, (h, p) in self._shards.items()
        }
        self.counters = Counters()
        self._route_seq = 0
        # Tenant fail-over state: the last successful register header
        # per tenant (replayed on a new shard) and current placement.
        self._registered: Dict[str, Dict[str, Any]] = {}
        self._placed: Dict[str, str] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None

    # -- shard side --------------------------------------------------------

    def _routing_key(self, header: Dict[str, Any]) -> str:
        tenant = header.get("tenant")
        if isinstance(tenant, str) and tenant:
            return f"tenant:{tenant}"
        req_id = header.get("id")
        if isinstance(req_id, str) and req_id:
            return f"req:{req_id}"
        self._route_seq += 1
        return f"seq:{self._route_seq}"

    async def _forward_once(
        self, shard: str, header: Dict[str, Any], payload: bytes,
        dtype_code: int,
    ) -> Dict[str, Any]:
        pool = self._pools[shard]
        reader, writer = await pool.acquire()
        try:
            writer.write(frames.encode_frame(
                frames.FRAME_REQUEST, header, payload, dtype_code
            ))
            await writer.drain()
            got = await _read_frame_async(reader)
            if got is None:
                raise ProtocolError(f"shard {shard} closed mid-request")
        except BaseException:
            writer.close()
            raise
        pool.release(reader, writer)
        return got[2]

    async def _replay_register(self, tenant: str, shard: str) -> None:
        """Re-home a tenant: replay its register on the new shard."""
        reg = self._registered.get(tenant)
        if reg is None:
            return
        try:
            await self._forward_once(shard, reg, b"", frames.DTYPE_NONE)
            self.counters.add("ring.register_replays")
        except (OSError, ProtocolError, asyncio.TimeoutError):
            # The forward itself will hit the same wall and re-route.
            pass

    def _note_tenant(self, header: Dict[str, Any], shard: str) -> None:
        tenant = header.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            return
        if header.get("op") == "register":
            self._registered[tenant] = dict(header)
        elif header.get("op") == "evict":
            self._registered.pop(tenant, None)
        self._placed[tenant] = shard

    async def _route(
        self, header: Dict[str, Any], payload: bytes, dtype_code: int,
    ) -> Dict[str, Any]:
        """Forward with ring fail-over; degrade when nothing is live."""
        self.counters.add("ring.requests")
        key = self._routing_key(header)
        primary = self._ring.primary(key)
        tenant = header.get("tenant")
        op = header.get("op")
        for shard in self._ring.successors(key):
            if isinstance(tenant, str) and op != "register" and \
                    self._placed.get(tenant) != shard:
                await self._replay_register(tenant, shard)
            try:
                response = await self._forward_once(
                    shard, header, payload, dtype_code
                )
            except (OSError, ProtocolError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                self._ring.mark_down(shard)
                self._pools[shard].discard_all()
                self.counters.add("ring.shard_failures")
                continue
            self._note_tenant(header, shard)
            response["shard"] = shard
            if shard != primary:
                response["rerouted"] = True
                self.counters.add("ring.reroutes")
            return response
        return await self._degrade(header, payload, dtype_code)

    async def _degrade(
        self, header: Dict[str, Any], payload: bytes, dtype_code: int,
    ) -> Dict[str, Any]:
        """Every shard is down: flagged approximate answer or error."""
        self.counters.add("ring.degraded")
        req_id = header.get("id")
        if not isinstance(req_id, str):
            req_id = None
        if header.get("op") is not None:
            return {
                "id": req_id, "ok": False, "degraded": True,
                "shard": None, "error": "ServiceUnavailable",
                "message": "every shard is down; tenant state is "
                           "shard-resident and cannot be approximated",
            }
        trace: Optional[np.ndarray] = None
        if payload:
            trace = np.frombuffer(payload,
                                  dtype=frames.DTYPE_BY_CODE[dtype_code])
        elif isinstance(header.get("trace"), list):
            trace = np.asarray(header["trace"], dtype=np.int64)
        sizes = header.get("sizes") or []
        loop = asyncio.get_running_loop()
        payload_obj = await loop.run_in_executor(
            None,
            lambda: degraded_solve_payload(
                req_id, trace, sizes, reason="every shard is down",
            ),
        )
        payload_obj["shard"] = None
        return payload_obj

    async def _heartbeat(self) -> None:
        """Probe every shard; revive down ones, fell unresponsive ones."""
        while True:
            await asyncio.sleep(self._heartbeat_interval)
            for name in list(self._shards):
                pool = self._pools[name]
                try:
                    reader, writer = await pool.acquire()
                except (OSError, ProtocolError, asyncio.TimeoutError):
                    if not self._ring.is_down(name):
                        self._ring.mark_down(name)
                        pool.discard_all()
                    self.counters.add("ring.heartbeat_failures")
                    continue
                try:
                    writer.write(frames.encode_frame(
                        frames.FRAME_REQUEST, {"op": schema.HELLO_OP}
                    ))
                    await writer.drain()
                    got = await asyncio.wait_for(
                        _read_frame_async(reader), _HELLO_TIMEOUT
                    )
                    if got is None:
                        raise ProtocolError("shard closed on hello")
                except (OSError, ProtocolError, asyncio.TimeoutError):
                    writer.close()
                    if not self._ring.is_down(name):
                        self._ring.mark_down(name)
                        pool.discard_all()
                    self.counters.add("ring.heartbeat_failures")
                    continue
                pool.release(reader, writer)
                if self._ring.is_down(name):
                    self._ring.mark_up(name)
                    self.counters.add("ring.recoveries")

    # -- client side -------------------------------------------------------

    def _hello_response(self, req_id: Optional[str],
                        upgrade: bool) -> Dict[str, Any]:
        payload = schema.hello_payload(
            req_id, tenants_enabled=True, binary_ok=True,
            server="ring", shards=len(self._shards),
        )
        if upgrade:
            payload["upgraded"] = schema.PROTOCOL_V2
        return payload

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        out_lock = asyncio.Lock()
        pending: set = set()

        async def send(payload: Dict[str, Any], binary: bool) -> None:
            async with out_lock:
                try:
                    if binary:
                        writer.write(frames.encode_frame(
                            frames.FRAME_RESPONSE, payload
                        ))
                    else:
                        writer.write(
                            json.dumps(payload).encode("utf-8") + b"\n"
                        )
                    await writer.drain()
                except (OSError, ConnectionError):
                    pass  # client went away; the shard work still ran

        async def dispatch(header: Dict[str, Any], payload: bytes,
                           dtype_code: int, binary: bool) -> None:
            req_id = header.get("id")
            if not isinstance(req_id, str):
                req_id = None
            try:
                response = await self._route(header, payload, dtype_code)
            except Exception as exc:  # noqa: BLE001 — answered in-band
                response = {"id": req_id, "ok": False,
                            "error": type(exc).__name__,
                            "message": str(exc)}
            await send(response, binary)

        def spawn(coro: Any) -> None:
            task = asyncio.ensure_future(coro)
            pending.add(task)
            task.add_done_callback(pending.discard)

        binary = False
        try:
            # v1 JSON line phase (may upgrade out of it).
            while not binary:
                line = await reader.readline()
                if not line:
                    return
                try:
                    text = line.decode("utf-8").strip()
                except UnicodeDecodeError as exc:
                    await send({"id": None, "ok": False,
                                "error": "ProtocolError",
                                "message": f"not valid UTF-8: {exc}"},
                               False)
                    continue
                if not text:
                    continue
                try:
                    obj = json.loads(text) if text.startswith("{") else \
                        {"trace": text}
                except json.JSONDecodeError as exc:
                    await send({"id": None, "ok": False,
                                "error": "ReproError",
                                "message": f"bad request JSON: {exc}"},
                               False)
                    continue
                if not isinstance(obj, dict):
                    await send({"id": None, "ok": False,
                                "error": "ReproError",
                                "message": "request JSON must be an "
                                           "object"}, False)
                    continue
                if obj.get("op") == schema.HELLO_OP:
                    rid = obj.get("id")
                    upgrade = bool(obj.get("upgrade"))
                    if upgrade:
                        # Framing change: no response may straddle it.
                        while pending:
                            await asyncio.gather(*list(pending),
                                                 return_exceptions=True)
                    await send(self._hello_response(
                        rid if isinstance(rid, str) else None, upgrade
                    ), False)
                    if upgrade:
                        binary = True
                    continue
                spawn(dispatch(obj, b"", frames.DTYPE_NONE, False))
            # v2 binary frame phase.
            while True:
                got = await _read_frame_async(reader)
                if got is None:
                    return
                frame_type, dtype_code, header, payload = got
                if frame_type != frames.FRAME_REQUEST:
                    raise ProtocolError(
                        f"expected a request frame, got type {frame_type}"
                    )
                if header.get("op") == schema.HELLO_OP:
                    rid = header.get("id")
                    await send(self._hello_response(
                        rid if isinstance(rid, str) else None, True
                    ), True)
                    continue
                spawn(dispatch(header, payload, dtype_code, True))
        except ProtocolError as exc:
            self.counters.add("ring.protocol_errors")
            await send({"id": None, "ok": False,
                        "error": "ProtocolError", "message": str(exc)},
                       binary)
        finally:
            while pending:
                await asyncio.gather(*list(pending),
                                     return_exceptions=True)
            try:
                writer.close()
            except OSError:  # pragma: no cover - teardown noise
                pass

    # -- lifecycle ---------------------------------------------------------

    async def serve(self) -> None:
        """Bind and serve until cancelled (runs the heartbeat too)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port,
            limit=_STREAM_LIMIT,
        )
        self._address = self._server.sockets[0].getsockname()[:2]
        heartbeat = asyncio.ensure_future(self._heartbeat())
        self._started.set()
        try:
            async with self._server:
                await self._server.serve_forever()
        finally:
            heartbeat.cancel()

    def start_in_thread(self) -> Tuple[str, int]:
        """Run the frontend on a daemon thread; returns its address."""
        if self._thread is not None:
            raise ReproError("frontend already started")

        def run() -> None:
            try:
                asyncio.run(self.serve())
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                pass

        self._thread = threading.Thread(
            target=run, name="cluster-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise ReproError("cluster frontend failed to start")
        assert self._address is not None
        return self._address

    def stop(self) -> None:
        """Stop the loop thread (idempotent)."""
        loop = self._loop
        if loop is None or self._thread is None:
            return

        def shutdown() -> None:
            assert self._server is not None
            self._server.close()
            for task in asyncio.all_tasks():
                task.cancel()

        try:
            loop.call_soon_threadsafe(shutdown)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass
        self._thread.join(timeout=10.0)
        self._thread = None

    def metrics(self) -> Dict[str, float]:
        out = dict(self.counters.snapshot())
        out["ring.live_shards"] = float(len(self._ring.live_nodes))
        return out


__all__ = ["ClusterFrontend"]
