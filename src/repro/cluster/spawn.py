"""Spawn a whole ring: N ``repro serve`` shard processes + a frontend.

:func:`spawn_ring` is the one-call cluster: it forks N shard server
processes (each its own ``CurveService`` — and, with
``shard_processes=True``, its own shared-memory ``ProcessExecutor``
pool), waits for each to report its bound port, starts a
:class:`~repro.cluster.frontend.ClusterFrontend` routing across them,
and hands back a :class:`ClusterHandle`::

    with spawn_ring(3) as cluster:
        with CurveClient(*cluster.address) as client:
            client.solve([1, 2, 1, 3])

    # fail-over drills:
    cluster.kill_shard(0)      # SIGKILL one backend mid-traffic

``repro serve --cluster N`` is this function behind the CLI.
"""

from __future__ import annotations

import re
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from .frontend import ClusterFrontend

_READY_RE = re.compile(r"serving on ([^\s:]+):(\d+)")
_READY_TIMEOUT = 30.0


@dataclass
class ShardProcess:
    """One shard backend: the subprocess plus its bound address."""

    name: str
    proc: subprocess.Popen
    host: str = ""
    port: int = 0
    _ready: threading.Event = field(default_factory=threading.Event)
    _stderr_tail: List[str] = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None


def _watch_stderr(shard: ShardProcess) -> None:
    """Scan a shard's stderr for the ready line, then keep draining.

    Draining matters: an un-read pipe fills and wedges the child the
    first time it logs anything.
    """
    assert shard.proc.stderr is not None
    for raw in shard.proc.stderr:
        line = raw.decode("utf-8", "replace").rstrip()
        if not shard._ready.is_set():
            match = _READY_RE.search(line)
            if match:
                shard.host = match.group(1)
                shard.port = int(match.group(2))
                shard._ready.set()
                continue
        shard._stderr_tail.append(line)
        del shard._stderr_tail[:-20]


def _spawn_shard(index: int, *, host: str, workers: int,
                 shard_processes: bool,
                 extra_args: Tuple[str, ...]) -> ShardProcess:
    cmd = [
        sys.executable, "-u", "-m", "repro", "serve",
        "--host", host, "--port", "0",
        "--workers", str(workers),
        "--tenants",
    ]
    if shard_processes:
        cmd.append("--shard-processes")
    cmd.extend(extra_args)
    proc = subprocess.Popen(
        cmd,
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    shard = ShardProcess(name=f"shard{index}", proc=proc)
    threading.Thread(
        target=_watch_stderr, args=(shard,),
        name=f"{shard.name}-stderr", daemon=True,
    ).start()
    return shard


class ClusterHandle:
    """A running ring: shard subprocesses + the routing frontend."""

    def __init__(self, shards: List[ShardProcess],
                 frontend: ClusterFrontend,
                 address: Tuple[str, int]) -> None:
        self.shards = shards
        self.frontend = frontend
        #: ``(host, port)`` clients connect to.
        self.address = address

    def kill_shard(self, index: int) -> ShardProcess:
        """SIGKILL one backend (fail-over drills); returns its record."""
        shard = self.shards[index]
        if shard.alive:
            shard.proc.kill()
            shard.proc.wait(timeout=10.0)
        return shard

    def metrics(self) -> Dict[str, float]:
        return self.frontend.metrics()

    def close(self) -> None:
        self.frontend.stop()
        for shard in self.shards:
            if shard.alive:
                shard.proc.terminate()
        for shard in self.shards:
            try:
                shard.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                shard.proc.kill()
                shard.proc.wait(timeout=10.0)

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def spawn_ring(
    n: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    shard_processes: bool = False,
    replicas: int = 64,
    heartbeat_interval: float = 0.5,
    extra_args: Tuple[str, ...] = (),
) -> ClusterHandle:
    """Start ``n`` shard processes and a frontend routing across them.

    ``extra_args`` append raw ``repro serve`` flags to every shard
    (e.g. ``("--max-queue", "1024")``).  Raises :class:`ReproError`
    (after reaping everything already started) if any shard fails to
    come up within 30s.
    """
    if n < 1:
        raise ValueError(f"cluster size must be >= 1, got {n}")
    shards = [
        _spawn_shard(i, host=host, workers=workers,
                     shard_processes=shard_processes,
                     extra_args=tuple(extra_args))
        for i in range(n)
    ]
    try:
        for shard in shards:
            if not shard._ready.wait(timeout=_READY_TIMEOUT):
                tail = "\n".join(shard._stderr_tail)
                raise ReproError(
                    f"{shard.name} did not report a port within "
                    f"{_READY_TIMEOUT:.0f}s; stderr tail:\n{tail}"
                )
        frontend = ClusterFrontend(
            {s.name: (s.host, s.port) for s in shards},
            host=host, port=port, replicas=replicas,
            heartbeat_interval=heartbeat_interval,
        )
        address = frontend.start_in_thread()
    except BaseException:
        for shard in shards:
            if shard.alive:
                shard.proc.kill()
        for shard in shards:
            try:
                shard.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        raise
    return ClusterHandle(shards, frontend, address)


__all__ = ["ClusterHandle", "ShardProcess", "spawn_ring"]
