"""Consistent-hash ring placement for the shard cluster.

Classic virtual-node consistent hashing: each shard owns ``replicas``
points on a 64-bit ring, a key routes to the first live point at or
after its own hash, and removing a shard moves only that shard's keys.
Hashes come from :func:`hashlib.blake2b` (8-byte digest), **not**
Python's builtin ``hash()`` — placement must be identical across
processes and runs regardless of ``PYTHONHASHSEED``, because tenants
are pinned to shards by key and a restarted frontend must route them
to the same place.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Set


def _hash64(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """Virtual-node consistent hashing with up/down shard marking.

    ``lookup`` skips shards marked down (fail-over re-route);
    ``successors`` yields the distinct live shards in ring order for
    bounded retry.  Mutations (:meth:`mark_down` / :meth:`mark_up`) do
    not rebuild the ring — down shards keep their points, so a
    recovered shard gets its exact key range back.
    """

    def __init__(self, nodes: Iterable[str], replicas: int = 64) -> None:
        self._nodes: List[str] = list(dict.fromkeys(nodes))
        if not self._nodes:
            raise ValueError("ring needs at least one node")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._down: Set[str] = set()
        points: Dict[int, str] = {}
        for node in self._nodes:
            for i in range(replicas):
                # Sorted-dict insertion order breaks ties (same point
                # hash for two nodes) deterministically by node order.
                points.setdefault(_hash64(f"{node}#{i}"), node)
        self._points = sorted(points)
        self._owner = [points[p] for p in self._points]

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    @property
    def live_nodes(self) -> List[str]:
        return [n for n in self._nodes if n not in self._down]

    def is_down(self, node: str) -> bool:
        return node in self._down

    def mark_down(self, node: str) -> None:
        if node in self._nodes:
            self._down.add(node)

    def mark_up(self, node: str) -> None:
        self._down.discard(node)

    def _walk(self, key: str) -> Iterable[str]:
        """Every node in ring order from ``key``'s point, with repeats."""
        start = bisect.bisect_left(self._points, _hash64(key))
        n = len(self._points)
        for step in range(n):
            yield self._owner[(start + step) % n]

    def lookup(self, key: str) -> str:
        """The live owner for ``key``; raises when every shard is down."""
        for node in self._walk(key):
            if node not in self._down:
                return node
        raise LookupError("every shard in the ring is down")

    def successors(self, key: str) -> List[str]:
        """Distinct *live* nodes in ring order from ``key``.

        ``successors(k)[0] == lookup(k)``; the tail is the retry order
        for fail-over, each a distinct shard.
        """
        seen: Set[str] = set()
        out: List[str] = []
        for node in self._walk(key):
            if node in self._down or node in seen:
                continue
            seen.add(node)
            out.append(node)
        return out

    def primary(self, key: str) -> str:
        """The owner ignoring up/down state (stable home placement)."""
        return next(iter(self._walk(key)))


__all__ = ["HashRing"]
